//! Hand-rolled binary key/value codec for the external shuffle.
//!
//! The MapReduce engine's spill-to-disk partitions (see `kf-mapreduce`)
//! need to serialize `(key, values)` groups to sorted run files and read
//! them back byte-identically. The vendored `serde` shim is derive-only
//! (no real serialization), so this module provides a small, explicit
//! binary codec instead: fixed-width little-endian integers, tagged
//! enums, and length-prefixed sequences. No self-description, no
//! versioning — a run file is written and read by the same process, so
//! the schema is the Rust type itself.
//!
//! Implementations exist for the primitives and containers the fusion
//! shuffles move (unsigned/signed integers, `f64` via its bit pattern,
//! `bool`, `()`, `String`, `Option<T>`, `Vec<T>`, tuples up to arity 4)
//! and for the domain types that ride through shuffles (`Value`,
//! `DataItem`, `Triple`, [`ProvenanceKey`] via its
//! lossless `u128` packing, and every id newtype).
//!
//! # Contract
//!
//! For every implementation, decode is the exact inverse of encode:
//! `decode(&mut &encode(x)[..]) == Some(x)`, consuming precisely the
//! bytes encode produced. [`KvCodec::decode`] advances the input slice
//! past the decoded value and returns `None` (leaving the slice in an
//! unspecified position) on truncated or malformed input.

use crate::extraction::{Extraction, ExtractionBatch};
use crate::hash::FxHashMap;
use crate::ids::{EntityId, ExtractorId, PageId, PatternId, PredicateId, SiteId, StrId, TypeId};
use crate::provenance::{Provenance, ProvenanceKey};
use crate::triple::{DataItem, Triple};
use crate::value::{Numeric, Value};
use std::hash::Hash;

/// Binary encoding for shuffle keys and values, so the MapReduce engine
/// can spill grouped partitions to disk and merge them back losslessly.
///
/// ```
/// use kf_types::KvCodec;
///
/// let group = (String::from("tom cruise"), vec![1962u32, 7, 3]);
/// let mut buf = Vec::new();
/// group.encode(&mut buf);
///
/// let mut input = &buf[..];
/// let decoded = <(String, Vec<u32>)>::decode(&mut input).unwrap();
/// assert_eq!(decoded, group);
/// assert!(input.is_empty(), "decode consumed exactly what encode wrote");
/// ```
pub trait KvCodec: Sized {
    /// Append this value's binary encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode one value from the front of `input`, advancing it past the
    /// consumed bytes. Returns `None` on truncated or malformed input.
    fn decode(input: &mut &[u8]) -> Option<Self>;
}

/// Split `n` bytes off the front of `input`, advancing it.
#[inline]
fn take<'a>(input: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if input.len() < n {
        return None;
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Some(head)
}

macro_rules! int_codec {
    ($($ty:ty),*) => {$(
        impl KvCodec for $ty {
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn decode(input: &mut &[u8]) -> Option<Self> {
                let bytes = take(input, std::mem::size_of::<$ty>())?;
                Some(<$ty>::from_le_bytes(bytes.try_into().unwrap()))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, u128, i8, i16, i32, i64);

/// `usize` travels as `u64` so run files do not depend on the platform's
/// pointer width.
impl KvCodec for usize {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        usize::try_from(u64::decode(input)?).ok()
    }
}

/// `f64` travels as its IEEE-754 bit pattern: the roundtrip is exact for
/// every value including NaNs, negative zero and infinities.
impl KvCodec for f64 {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(f64::from_bits(u64::decode(input)?))
    }
}

/// `f32` travels as its IEEE-754 bit pattern, like [`f64`] — exact for
/// every value including NaNs (extraction confidences are `f32`).
impl KvCodec for f32 {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(f32::from_bits(u32::decode(input)?))
    }
}

impl KvCodec for bool {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl KvCodec for () {
    #[inline]
    fn encode(&self, _out: &mut Vec<u8>) {}
    #[inline]
    fn decode(_input: &mut &[u8]) -> Option<Self> {
        Some(())
    }
}

impl KvCodec for String {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = usize::try_from(u64::decode(input)?).ok()?;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl<T: KvCodec> KvCodec for Option<T> {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(None),
            1 => Some(Some(T::decode(input)?)),
            _ => None,
        }
    }
}

impl<T: KvCodec> KvCodec for Vec<T> {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = usize::try_from(u64::decode(input)?).ok()?;
        // Guard the pre-allocation against corrupt headers: each element
        // encodes to at least one byte unless `T` is zero-sized.
        if std::mem::size_of::<T>() > 0 && len > input.len() {
            return None;
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(input)?);
        }
        Some(items)
    }
}

macro_rules! tuple_codec {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: KvCodec),+> KvCodec for ($($name,)+) {
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$idx.encode(out);)+
            }
            #[inline]
            fn decode(input: &mut &[u8]) -> Option<Self> {
                Some(($($name::decode(input)?,)+))
            }
        }
    )+};
}

tuple_codec!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

macro_rules! id_codec {
    ($($ty:ty),*) => {$(
        impl KvCodec for $ty {
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                self.0.encode(out);
            }
            #[inline]
            fn decode(input: &mut &[u8]) -> Option<Self> {
                Some(Self(KvCodec::decode(input)?))
            }
        }
    )*};
}

id_codec!(
    EntityId,
    PredicateId,
    TypeId,
    PageId,
    SiteId,
    ExtractorId,
    PatternId,
    StrId,
    Numeric
);

impl KvCodec for Value {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Entity(e) => {
                out.push(0);
                e.encode(out);
            }
            Value::Str(s) => {
                out.push(1);
                s.encode(out);
            }
            Value::Num(n) => {
                out.push(2);
                n.encode(out);
            }
        }
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(Value::Entity(EntityId::decode(input)?)),
            1 => Some(Value::Str(StrId::decode(input)?)),
            2 => Some(Value::Num(Numeric::decode(input)?)),
            _ => None,
        }
    }
}

impl KvCodec for DataItem {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.subject.encode(out);
        self.predicate.encode(out);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(DataItem {
            subject: EntityId::decode(input)?,
            predicate: PredicateId::decode(input)?,
        })
    }
}

impl KvCodec for Triple {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.subject.encode(out);
        self.predicate.encode(out);
        // Qualified: `Value` also has an inherent `encode(self) -> u64`.
        KvCodec::encode(&self.object, out);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(Triple {
            subject: EntityId::decode(input)?,
            predicate: PredicateId::decode(input)?,
            object: Value::decode(input)?,
        })
    }
}

impl KvCodec for Provenance {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.extractor.encode(out);
        self.page.encode(out);
        self.site.encode(out);
        self.pattern.encode(out);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(Provenance {
            extractor: ExtractorId::decode(input)?,
            page: PageId::decode(input)?,
            site: SiteId::decode(input)?,
            pattern: PatternId::decode(input)?,
        })
    }
}

impl KvCodec for Extraction {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        KvCodec::encode(&self.triple, out);
        self.provenance.encode(out);
        self.confidence.encode(out);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(Extraction {
            triple: Triple::decode(input)?,
            provenance: Provenance::decode(input)?,
            confidence: Option::decode(input)?,
        })
    }
}

/// Columnar encoding: one column per record field (triple subject /
/// predicate / object, provenance dimensions, confidence presence +
/// bits). The batch is the largest single block of a corpus checkpoint
/// (hundreds of thousands of records), and bulk columns decode an order
/// of magnitude faster than element-wise records — load time is what the
/// checkpoint-and-fan-out pipeline exists for.
impl KvCodec for ExtractionBatch {
    fn encode(&self, out: &mut Vec<u8>) {
        let n = self.records.len();
        (n as u64).encode(out);
        out.reserve(n * 32);
        for e in &self.records {
            e.triple.subject.0.put_le(out);
        }
        for e in &self.records {
            e.triple.predicate.0.put_le(out);
        }
        let objects: Vec<Value> = self.records.iter().map(|e| e.triple.object).collect();
        encode_value_columns(&objects, out);
        for e in &self.records {
            e.provenance.extractor.0.put_le(out);
        }
        for e in &self.records {
            e.provenance.page.0.put_le(out);
        }
        for e in &self.records {
            e.provenance.site.0.put_le(out);
        }
        for e in &self.records {
            e.provenance.pattern.0.put_le(out);
        }
        for e in &self.records {
            out.push(e.confidence.is_some() as u8);
        }
        for e in &self.records {
            if let Some(c) = e.confidence {
                c.to_bits().put_le(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let n = usize::try_from(u64::decode(input)?).ok()?;
        let subjects = take(input, n.checked_mul(4)?)?;
        let predicates = take(input, n.checked_mul(4)?)?;
        let objects = decode_value_columns(input)?;
        if objects.len() != n {
            return None;
        }
        let extractors = take(input, n.checked_mul(2)?)?;
        let pages = take(input, n.checked_mul(4)?)?;
        let sites = take(input, n.checked_mul(4)?)?;
        let patterns = take(input, n.checked_mul(4)?)?;
        let present = take(input, n)?;
        let n_conf = present.iter().filter(|&&p| p == 1).count();
        if present.iter().any(|&p| p > 1) {
            return None;
        }
        let conf_bits = take(input, n_conf.checked_mul(4)?)?;

        // Zipped chunk iterators assemble the rows without per-field
        // bounds checks; the zip ends exactly at `n` because every
        // column was sliced to length above.
        let mut conf_chunks = conf_bits.chunks_exact(4);
        let rows = subjects
            .chunks_exact(4)
            .zip(predicates.chunks_exact(4))
            .zip(objects.iter())
            .zip(extractors.chunks_exact(2))
            .zip(pages.chunks_exact(4))
            .zip(sites.chunks_exact(4))
            .zip(patterns.chunks_exact(4))
            .zip(present.iter());
        let mut records = Vec::with_capacity(n);
        for (((((((subject, predicate), &object), extractor), page), site), pattern), &with_conf) in
            rows
        {
            let confidence = if with_conf == 1 {
                Some(f32::from_bits(u32::get_le(conf_chunks.next()?)))
            } else {
                None
            };
            records.push(Extraction {
                triple: Triple {
                    subject: EntityId(u32::get_le(subject)),
                    predicate: PredicateId(u32::get_le(predicate)),
                    object,
                },
                provenance: Provenance {
                    extractor: ExtractorId(u16::get_le(extractor)),
                    page: PageId(u32::get_le(page)),
                    site: SiteId(u32::get_le(site)),
                    pattern: PatternId(u32::get_le(pattern)),
                },
                confidence,
            });
        }
        Some(ExtractionBatch { records })
    }
}

/// Encode a hash map's entries **sorted by key**, so the byte stream is
/// canonical: the same logical map encodes identically regardless of
/// hasher state or insertion history. Checkpoint determinism (CI
/// byte-diffs two same-seed corpus snapshots) depends on every map in a
/// checkpointed artifact going through this.
pub fn encode_map_sorted<K, V>(map: &FxHashMap<K, V>, out: &mut Vec<u8>)
where
    K: KvCodec + Ord,
    V: KvCodec,
{
    let mut entries: Vec<(&K, &V)> = map.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    (entries.len() as u64).encode(out);
    for (k, v) in entries {
        k.encode(out);
        v.encode(out);
    }
}

/// Decode a map written by [`encode_map_sorted`]. Rejects duplicate keys
/// (a canonical encoding never contains them).
pub fn decode_map<K, V>(input: &mut &[u8]) -> Option<FxHashMap<K, V>>
where
    K: KvCodec + Eq + Hash,
    V: KvCodec,
{
    let len = usize::try_from(u64::decode(input)?).ok()?;
    // Same corrupt-header guard as `Vec<T>`: every entry costs ≥ 1 byte.
    if len > input.len() {
        return None;
    }
    let mut map = FxHashMap::default();
    map.reserve(len);
    for _ in 0..len {
        let key = K::decode(input)?;
        let value = V::decode(input)?;
        if map.insert(key, value).is_some() {
            return None;
        }
    }
    Some(map)
}

/// A fixed-width little-endian scalar usable in bulk [`encode_column`] /
/// [`decode_column`] encodings. Unlike element-wise `Vec<T>` decoding,
/// a column is one contiguous `len × WIDTH` byte block, so decoding is a
/// single bounds check plus a tight chunked loop — the difference between
/// ~40 ns and ~2 ns per element on checkpoint-sized data.
pub trait PodColumn: Copy {
    /// Encoded width in bytes.
    const WIDTH: usize;
    /// Append the little-endian encoding.
    fn put_le(self, out: &mut Vec<u8>);
    /// Read from exactly [`PodColumn::WIDTH`] bytes.
    fn get_le(bytes: &[u8]) -> Self;
}

macro_rules! pod_column {
    ($($ty:ty),*) => {$(
        impl PodColumn for $ty {
            const WIDTH: usize = std::mem::size_of::<$ty>();
            #[inline]
            fn put_le(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn get_le(bytes: &[u8]) -> Self {
                <$ty>::from_le_bytes(bytes.try_into().unwrap())
            }
        }
    )*};
}

pod_column!(u8, u16, u32, u64, i64);

/// Append `xs` as one length-prefixed contiguous column.
pub fn encode_column<T: PodColumn>(xs: &[T], out: &mut Vec<u8>) {
    (xs.len() as u64).encode(out);
    out.reserve(xs.len() * T::WIDTH);
    for &x in xs {
        x.put_le(out);
    }
}

/// Decode a column written by [`encode_column`].
pub fn decode_column<T: PodColumn>(input: &mut &[u8]) -> Option<Vec<T>> {
    let len = usize::try_from(u64::decode(input)?).ok()?;
    let bytes = take(input, len.checked_mul(T::WIDTH)?)?;
    Some(bytes.chunks_exact(T::WIDTH).map(T::get_le).collect())
}

/// Stable one-byte tag of a [`Value`] variant (also the tag used by the
/// element-wise `Value` encoding).
#[inline]
fn value_tag(v: Value) -> u8 {
    match v {
        Value::Entity(_) => 0,
        Value::Str(_) => 1,
        Value::Num(_) => 2,
    }
}

/// Full-fidelity 8-byte payload of a [`Value`] (unlike
/// [`Value::encode`], which packs the tag into the top bits and truncates
/// large numerics).
#[inline]
fn value_payload(v: Value) -> u64 {
    match v {
        Value::Entity(e) => e.0 as u64,
        Value::Str(s) => s.0 as u64,
        Value::Num(n) => n.0 as u64,
    }
}

#[inline]
fn value_from_columns(tag: u8, payload: u64) -> Option<Value> {
    match tag {
        0 => Some(Value::Entity(EntityId(u32::try_from(payload).ok()?))),
        1 => Some(Value::Str(StrId(u32::try_from(payload).ok()?))),
        2 => Some(Value::Num(Numeric(payload as i64))),
        _ => None,
    }
}

/// Append values as two columns (variant tags, 8-byte payloads) — the
/// bulk counterpart of encoding each [`Value`] element-wise.
pub fn encode_value_columns(values: &[Value], out: &mut Vec<u8>) {
    (values.len() as u64).encode(out);
    out.reserve(values.len() * 9);
    for &v in values {
        out.push(value_tag(v));
    }
    for &v in values {
        value_payload(v).put_le(out);
    }
}

/// Decode values written by [`encode_value_columns`].
pub fn decode_value_columns(input: &mut &[u8]) -> Option<Vec<Value>> {
    let len = usize::try_from(u64::decode(input)?).ok()?;
    let tags = take(input, len)?;
    let payloads = take(input, len.checked_mul(8)?)?;
    tags.iter()
        .zip(payloads.chunks_exact(8))
        .map(|(&tag, p)| value_from_columns(tag, u64::get_le(p)))
        .collect()
}

/// Append `(item, values)` groups in columnar form: item columns
/// (subjects, predicates), a per-group value-count column, and the
/// flattened values. Shared by the world fact table and the gold
/// standard, whose decode cost is otherwise dominated by element-wise
/// traversal.
pub fn encode_item_values_columns<'a, I>(n_groups: usize, groups: I, out: &mut Vec<u8>)
where
    I: Iterator<Item = (DataItem, &'a [Value])> + Clone,
{
    (n_groups as u64).encode(out);
    out.reserve(n_groups * 12);
    for (item, _) in groups.clone() {
        item.subject.0.put_le(out);
    }
    for (item, _) in groups.clone() {
        item.predicate.0.put_le(out);
    }
    let mut n_values = 0usize;
    for (_, values) in groups.clone() {
        (values.len() as u32).put_le(out);
        n_values += values.len();
    }
    (n_values as u64).encode(out);
    out.reserve(n_values * 9);
    for (_, values) in groups.clone() {
        for &v in values {
            out.push(value_tag(v));
        }
    }
    for (_, values) in groups {
        for &v in values {
            value_payload(v).put_le(out);
        }
    }
}

/// Decode groups written by [`encode_item_values_columns`].
pub fn decode_item_values_columns(input: &mut &[u8]) -> Option<Vec<(DataItem, Vec<Value>)>> {
    let n_groups = usize::try_from(u64::decode(input)?).ok()?;
    let subjects = take(input, n_groups.checked_mul(4)?)?;
    let predicates = take(input, n_groups.checked_mul(4)?)?;
    let counts = take(input, n_groups.checked_mul(4)?)?;
    let n_values = usize::try_from(u64::decode(input)?).ok()?;
    let tags = take(input, n_values)?;
    let payloads = take(input, n_values.checked_mul(8)?)?;

    let mut groups = Vec::with_capacity(n_groups);
    let mut at = 0usize;
    let mut payload_chunks = payloads.chunks_exact(8);
    for i in 0..n_groups {
        let item = DataItem::new(
            EntityId(u32::get_le(&subjects[i * 4..i * 4 + 4])),
            PredicateId(u32::get_le(&predicates[i * 4..i * 4 + 4])),
        );
        let count = u32::get_le(&counts[i * 4..i * 4 + 4]) as usize;
        let end = at.checked_add(count)?;
        if end > n_values {
            return None;
        }
        let mut values = Vec::with_capacity(count);
        for &tag in &tags[at..end] {
            values.push(value_from_columns(
                tag,
                u64::get_le(payload_chunks.next()?),
            )?);
        }
        at = end;
        groups.push((item, values));
    }
    // Every flattened value must belong to a group.
    (at == n_values).then_some(groups)
}

/// Append a length-prefixed segment: 8 placeholder bytes, `value`'s
/// encoding, then the byte length patched into the placeholder. Segments
/// let a decoder slice a composite encoding into independently decodable
/// (and therefore parallel-decodable) parts without re-parsing — the
/// corpus checkpoint codec in `kf-synth` frames its large fields this
/// way.
pub fn encode_segment<T: KvCodec>(value: &T, out: &mut Vec<u8>) {
    let at = out.len();
    out.extend_from_slice(&[0u8; 8]);
    value.encode(out);
    let len = (out.len() - at - 8) as u64;
    out[at..at + 8].copy_from_slice(&len.to_le_bytes());
}

/// Split one segment written by [`encode_segment`] off the front of
/// `input`, advancing past it. Returns `None` when the length header is
/// truncated or overruns the input.
pub fn take_segment<'a>(input: &mut &'a [u8]) -> Option<&'a [u8]> {
    let len = usize::try_from(u64::decode(input)?).ok()?;
    take(input, len)
}

/// Decode a whole segment as one `T`, requiring the value to consume the
/// segment exactly.
pub fn decode_segment_all<T: KvCodec>(mut segment: &[u8]) -> Option<T> {
    let value = T::decode(&mut segment)?;
    segment.is_empty().then_some(value)
}

/// Travels as the lossless `u128` packing of
/// [`ProvenanceKey::pack`](crate::ProvenanceKey::pack); the packed word
/// preserves key ordering within a granularity, so spilled runs sorted
/// on the decoded key match runs sorted on the encoding.
impl KvCodec for ProvenanceKey {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.pack().encode(out);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(ProvenanceKey::unpack(u128::decode(input)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::{Granularity, Provenance};

    fn roundtrip<T: KvCodec + PartialEq + std::fmt::Debug>(x: T) {
        let mut buf = Vec::new();
        x.encode(&mut buf);
        let mut input = &buf[..];
        assert_eq!(T::decode(&mut input), Some(x));
        assert!(input.is_empty(), "decode must consume the whole encoding");
    }

    #[test]
    fn integer_roundtrips() {
        roundtrip(0u8);
        roundtrip(u8::MAX);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(u128::MAX);
        roundtrip(i64::MIN);
        roundtrip(-1i32);
        roundtrip(usize::MAX);
    }

    #[test]
    fn float_roundtrip_is_bit_exact() {
        roundtrip(0.0f64);
        roundtrip(-0.0f64);
        roundtrip(f64::INFINITY);
        roundtrip(1.0 / 3.0);
        // NaN: compare bit patterns since NaN != NaN.
        let mut buf = Vec::new();
        f64::NAN.encode(&mut buf);
        let decoded = f64::decode(&mut &buf[..]).unwrap();
        assert_eq!(decoded.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(String::from("síte/página?q=1"));
        roundtrip(String::new());
        roundtrip(Some(42u32));
        roundtrip(None::<u32>);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u8>::new());
        roundtrip((7u16, String::from("x")));
        roundtrip((1u8, 2u16, 3u32));
        roundtrip((1usize, Some(0.5f64), true, vec![(1u32, 2u32)]));
    }

    #[test]
    fn domain_type_roundtrips() {
        roundtrip(Value::Entity(EntityId(7)));
        roundtrip(Value::Str(StrId(9)));
        roundtrip(Value::Num(Numeric(-8849)));
        roundtrip(DataItem::new(EntityId(1), PredicateId(2)));
        roundtrip(Triple::new(
            EntityId(1),
            PredicateId(2),
            Value::Num(Numeric(1_962_000)),
        ));
        let prov = Provenance::new(ExtractorId(3), PageId(100), SiteId(7), PatternId(42));
        for g in Granularity::ALL {
            roundtrip(ProvenanceKey::at(g, &prov, PredicateId(5)));
        }
    }

    #[test]
    fn f32_roundtrip_is_bit_exact() {
        roundtrip(0.0f32);
        roundtrip(-0.0f32);
        roundtrip(f32::INFINITY);
        roundtrip(0.7f32);
        let mut buf = Vec::new();
        f32::NAN.encode(&mut buf);
        assert_eq!(
            f32::decode(&mut &buf[..]).unwrap().to_bits(),
            f32::NAN.to_bits()
        );
    }

    #[test]
    fn extraction_records_roundtrip() {
        let prov = Provenance::new(ExtractorId(3), PageId(100), SiteId(7), PatternId::NONE);
        roundtrip(prov);
        let triple = Triple::new(EntityId(1), PredicateId(2), Value::Str(StrId(5)));
        roundtrip(Extraction::with_confidence(triple, prov, 0.25));
        roundtrip(Extraction::new(triple, prov));
        roundtrip(ExtractionBatch::from_records(vec![
            Extraction::new(triple, prov),
            Extraction::with_confidence(triple, prov, 1.0),
        ]));
    }

    #[test]
    fn sorted_map_encoding_is_canonical() {
        // Two maps with the same entries inserted in opposite orders must
        // encode to identical bytes.
        let mut a: FxHashMap<u32, u64> = FxHashMap::default();
        let mut b: FxHashMap<u32, u64> = FxHashMap::default();
        for i in 0..100u32 {
            a.insert(i, i as u64 * 3);
        }
        for i in (0..100u32).rev() {
            b.insert(i, i as u64 * 3);
        }
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        encode_map_sorted(&a, &mut ea);
        encode_map_sorted(&b, &mut eb);
        assert_eq!(ea, eb, "encoding must not depend on insertion order");
        let decoded: FxHashMap<u32, u64> = decode_map(&mut &ea[..]).unwrap();
        assert_eq!(decoded, a);
    }

    #[test]
    fn segments_roundtrip_and_reject_over_and_underruns() {
        let mut buf = Vec::new();
        encode_segment(&vec![1u32, 2, 3], &mut buf);
        encode_segment(&String::from("tail"), &mut buf);
        let mut input = &buf[..];
        let seg = take_segment(&mut input).unwrap();
        assert_eq!(decode_segment_all::<Vec<u32>>(seg), Some(vec![1, 2, 3]));
        let seg2 = take_segment(&mut input).unwrap();
        assert_eq!(decode_segment_all::<String>(seg2), Some("tail".into()));
        assert!(input.is_empty());
        // A segment longer than the remaining input is rejected.
        let mut truncated = &buf[..buf.len() - 1];
        take_segment(&mut truncated).unwrap();
        assert_eq!(take_segment(&mut truncated), None);
        // A value that does not consume its whole segment is rejected.
        let mut padded = Vec::new();
        encode_segment(&(7u32, 0u8), &mut padded);
        let mut input = &padded[..];
        let seg = take_segment(&mut input).unwrap();
        assert_eq!(decode_segment_all::<u32>(seg), None);
    }

    #[test]
    fn map_decode_rejects_duplicates_and_bad_headers() {
        // Hand-build an encoding with a duplicated key.
        let mut buf = Vec::new();
        2u64.encode(&mut buf);
        for _ in 0..2 {
            5u32.encode(&mut buf);
            9u64.encode(&mut buf);
        }
        assert_eq!(decode_map::<u32, u64>(&mut &buf[..]), None);
        // Oversized length header must not pre-allocate.
        let mut buf = Vec::new();
        u64::MAX.encode(&mut buf);
        assert_eq!(decode_map::<u32, u64>(&mut &buf[..]), None);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut buf = Vec::new();
        (42u64, String::from("hello")).encode(&mut buf);
        for cut in 0..buf.len() {
            let mut input = &buf[..cut];
            assert_eq!(
                <(u64, String)>::decode(&mut input),
                None,
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn malformed_tags_are_rejected() {
        assert_eq!(bool::decode(&mut &[2u8][..]), None);
        assert_eq!(Option::<u8>::decode(&mut &[9u8, 0][..]), None);
        assert_eq!(Value::decode(&mut &[3u8, 0, 0, 0, 0][..]), None);
        // A Vec length header larger than the remaining input must not
        // cause a huge pre-allocation.
        let mut buf = Vec::new();
        (u64::MAX).encode(&mut buf);
        assert_eq!(Vec::<u32>::decode(&mut &buf[..]), None);
    }

    #[test]
    fn decode_advances_past_each_value() {
        let mut buf = Vec::new();
        1u32.encode(&mut buf);
        2u32.encode(&mut buf);
        let mut input = &buf[..];
        assert_eq!(u32::decode(&mut input), Some(1));
        assert_eq!(u32::decode(&mut input), Some(2));
        assert_eq!(u32::decode(&mut input), None);
    }
}
