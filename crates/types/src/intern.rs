//! String interning.
//!
//! Raw-string object values (80M of the paper's 102M unique objects) are
//! interned once so the rest of the system moves `Copy` [`StrId`]s around.

use crate::hash::{FxBuildHasher, FxHashMap};
use crate::ids::StrId;
use serde::{Deserialize, Serialize};
use std::hash::BuildHasher;

/// An append-only string interner. Not thread-safe by itself; corpus
/// construction happens single-threaded (or behind a lock) while fusion, the
/// hot phase, only reads.
///
/// The reverse index maps a string's 64-bit Fx hash to the id carrying
/// that hash; the rare hash collisions overflow into a side list scanned
/// by string comparison. Keying by hash instead of by owned `String`
/// keeps the index clone-free and allocation-free per entry, which makes
/// [`Interner::rebuild_index`] — and therefore checkpoint loading —
/// cheap.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interner {
    strings: Vec<String>,
    #[serde(skip)]
    index: FxHashMap<u64, StrId>,
    /// Ids displaced from `index` by a hash collision (kept tiny; scanned
    /// linearly with full string comparison).
    #[serde(skip)]
    collisions: Vec<StrId>,
}

/// The index hash of a string.
#[inline]
fn hash_str(s: &str) -> u64 {
    FxBuildHasher::default().hash_one(s)
}

/// Checkpoint encoding: the dense string table only. The reverse index is
/// derived state and is rebuilt on decode, mirroring the serde skip.
impl crate::KvCodec for Interner {
    fn encode(&self, out: &mut Vec<u8>) {
        self.strings.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let mut interner = Interner {
            strings: Vec::decode(input)?,
            index: FxHashMap::default(),
            collisions: Vec::new(),
        };
        interner.rebuild_index();
        Some(interner)
    }
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its id (existing id when already interned).
    pub fn intern(&mut self, s: &str) -> StrId {
        if let Some(id) = self.lookup(s) {
            return id;
        }
        let id = StrId::from_index(self.strings.len());
        self.strings.push(s.to_owned());
        match self.index.entry(hash_str(s)) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(id);
            }
            // A different string owns this hash slot; keep the new id
            // reachable through the collision overflow list.
            std::collections::hash_map::Entry::Occupied(_) => self.collisions.push(id),
        }
        id
    }

    /// Resolve an id back to its string. Panics on a foreign id, which is
    /// always a programming error (ids only come from this interner).
    pub fn resolve(&self, id: StrId) -> &str {
        &self.strings[id.index()]
    }

    /// Resolve, returning `None` for out-of-range ids.
    pub fn get(&self, id: StrId) -> Option<&str> {
        self.strings.get(id.index()).map(String::as_str)
    }

    /// Look up an already-interned string without inserting.
    pub fn lookup(&self, s: &str) -> Option<StrId> {
        if let Some(&id) = self.index.get(&hash_str(s)) {
            if self.strings[id.index()] == s {
                return Some(id);
            }
        }
        self.collisions
            .iter()
            .copied()
            .find(|&id| self.strings[id.index()] == s)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Rebuild the reverse index (needed after deserialisation, since the
    /// index is not serialised). Clone-free and allocation-free per
    /// entry: the index holds hashes and ids, never the strings
    /// themselves.
    pub fn rebuild_index(&mut self) {
        self.index.clear();
        self.index.reserve(self.strings.len());
        self.collisions.clear();
        for (i, s) in self.strings.iter().enumerate() {
            match self.index.entry(hash_str(s)) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(StrId::from_index(i));
                }
                std::collections::hash_map::Entry::Occupied(_) => {
                    self.collisions.push(StrId::from_index(i));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Tom Cruise");
        let b = i.intern("Tom Cruise");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_ids() {
        let mut i = Interner::new();
        let a = i.intern("Syracuse NY");
        let b = i.intern("New York City");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "Syracuse NY");
        assert_eq!(i.resolve(b), "New York City");
    }

    #[test]
    fn lookup_does_not_insert() {
        let mut i = Interner::new();
        assert_eq!(i.lookup("x"), None);
        let id = i.intern("x");
        assert_eq!(i.lookup("x"), Some(id));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn get_handles_foreign_ids() {
        let i = Interner::new();
        assert_eq!(i.get(StrId(99)), None);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let mut j = i.clone();
        j.index.clear(); // simulate deserialisation
        assert_eq!(j.lookup("a"), None);
        j.rebuild_index();
        assert_eq!(j.lookup("a"), i.lookup("a"));
        assert_eq!(j.lookup("b"), i.lookup("b"));
    }

    #[test]
    fn kvcodec_roundtrip_rebuilds_the_index() {
        use crate::KvCodec;
        let mut i = Interner::new();
        let a = i.intern("Syracuse NY");
        let b = i.intern("New York City");
        let mut buf = Vec::new();
        i.encode(&mut buf);
        let mut input = &buf[..];
        let back = Interner::decode(&mut input).unwrap();
        assert!(input.is_empty());
        assert_eq!(back, i);
        assert_eq!(back.lookup("Syracuse NY"), Some(a));
        assert_eq!(back.lookup("New York City"), Some(b));
        assert_eq!(back.lookup("nope"), None);
    }

    #[test]
    fn ids_are_dense() {
        let mut i = Interner::new();
        for n in 0..100 {
            let id = i.intern(&format!("s{n}"));
            assert_eq!(id.index(), n);
        }
    }
}
