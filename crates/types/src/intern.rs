//! String interning.
//!
//! Raw-string object values (80M of the paper's 102M unique objects) are
//! interned once so the rest of the system moves `Copy` [`StrId`]s around.

use crate::hash::FxHashMap;
use crate::ids::StrId;
use serde::{Deserialize, Serialize};

/// An append-only string interner. Not thread-safe by itself; corpus
/// construction happens single-threaded (or behind a lock) while fusion, the
/// hot phase, only reads.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Interner {
    strings: Vec<String>,
    #[serde(skip)]
    index: FxHashMap<String, StrId>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its id (existing id when already interned).
    pub fn intern(&mut self, s: &str) -> StrId {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = StrId::from_index(self.strings.len());
        self.strings.push(s.to_owned());
        self.index.insert(s.to_owned(), id);
        id
    }

    /// Resolve an id back to its string. Panics on a foreign id, which is
    /// always a programming error (ids only come from this interner).
    pub fn resolve(&self, id: StrId) -> &str {
        &self.strings[id.index()]
    }

    /// Resolve, returning `None` for out-of-range ids.
    pub fn get(&self, id: StrId) -> Option<&str> {
        self.strings.get(id.index()).map(String::as_str)
    }

    /// Look up an already-interned string without inserting.
    pub fn lookup(&self, s: &str) -> Option<StrId> {
        self.index.get(s).copied()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Rebuild the reverse index (needed after deserialisation, since the
    /// index is not serialised).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .strings
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), StrId::from_index(i)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Tom Cruise");
        let b = i.intern("Tom Cruise");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_ids() {
        let mut i = Interner::new();
        let a = i.intern("Syracuse NY");
        let b = i.intern("New York City");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "Syracuse NY");
        assert_eq!(i.resolve(b), "New York City");
    }

    #[test]
    fn lookup_does_not_insert() {
        let mut i = Interner::new();
        assert_eq!(i.lookup("x"), None);
        let id = i.intern("x");
        assert_eq!(i.lookup("x"), Some(id));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn get_handles_foreign_ids() {
        let i = Interner::new();
        assert_eq!(i.get(StrId(99)), None);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let mut j = i.clone();
        j.index.clear(); // simulate deserialisation
        assert_eq!(j.lookup("a"), None);
        j.rebuild_index();
        assert_eq!(j.lookup("a"), i.lookup("a"));
        assert_eq!(j.lookup("b"), i.lookup("b"));
    }

    #[test]
    fn ids_are_dense() {
        let mut i = Interner::new();
        for n in 0..100 {
            let id = i.intern(&format!("s{n}"));
            assert_eq!(id.index(), n);
        }
    }
}
