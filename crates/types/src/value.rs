//! Object values of knowledge triples.
//!
//! Per §3.1.1 of the paper, an object is an entity, a raw string, or a
//! number (the corpus has 23M entity objects, 80M strings, 1M numbers).
//! Values must be `Eq + Hash + Ord` because fusion groups and counts them,
//! so numbers are stored as fixed-point [`Numeric`] rather than `f64`.

use crate::ids::{EntityId, StrId};
use serde::{Deserialize, Serialize};

/// Fixed-point decimal with three fractional digits.
///
/// Fusion only ever compares values for identity (the paper treats objects
/// as categorical, §5.4), so exact equality semantics matter more than
/// floating-point range. Milli-precision covers dates-as-years, heights,
/// populations and the like.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Numeric(pub i64);

impl Numeric {
    /// Scale factor between the integer representation and the real value.
    pub const SCALE: f64 = 1000.0;

    /// Build from a float, rounding to milli precision.
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        Numeric((x * Self::SCALE).round() as i64)
    }

    /// Build from an integer quantity.
    #[inline]
    pub fn from_i64(x: i64) -> Self {
        Numeric(x.saturating_mul(1000))
    }

    /// Recover the float value.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / Self::SCALE
    }
}

/// The object slot of a triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A reconciled KB entity.
    Entity(EntityId),
    /// A raw (interned) string: names, descriptions, addresses.
    Str(StrId),
    /// A number.
    Num(Numeric),
}

impl Value {
    /// Entity payload, if this is an entity value.
    #[inline]
    pub fn as_entity(self) -> Option<EntityId> {
        match self {
            Value::Entity(e) => Some(e),
            _ => None,
        }
    }

    /// String payload, if this is a string value.
    #[inline]
    pub fn as_str_id(self) -> Option<StrId> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    #[inline]
    pub fn as_num(self) -> Option<Numeric> {
        match self {
            Value::Num(n) => Some(n),
            _ => None,
        }
    }

    /// Stable 64-bit encoding used for partitioning and sort keys.
    #[inline]
    pub fn encode(self) -> u64 {
        match self {
            // Variant tag in the top two bits (Entity's tag is 0).
            Value::Entity(e) => e.0 as u64,
            Value::Str(s) => (1u64 << 62) | s.0 as u64,
            Value::Num(n) => (2u64 << 62) | (n.0 as u64 & ((1u64 << 62) - 1)),
        }
    }
}

/// Access to a hierarchy over (entity) values, e.g. the location chain
/// `San Francisco → CA → USA → North America` of §5.4.
///
/// Implemented by the synthetic world in `kf-synth`; consumed by the
/// hierarchy-aware fusion extension in `kf-core` and by the error-analysis
/// taxonomy in `kf-diagnose` (the "specific/general value" categories of
/// Fig. 17).
pub trait ValueHierarchy {
    /// Immediate parent of `v` in the hierarchy, if any.
    fn parent(&self, v: Value) -> Option<Value>;

    /// Whether `v` is an *interior* node of the hierarchy — a value that
    /// is some other value's parent (a generalisation, like *USA* in the
    /// location chain). Implementations that can enumerate the hierarchy
    /// should override this; the default conservatively reports `false`.
    /// Used by the error-taxonomy classifiers: a reported interior value
    /// for a hierarchy-valued item is the signature of a
    /// wrong-but-general extraction (Fig. 17).
    fn is_interior(&self, _v: Value) -> bool {
        false
    }

    /// Whether `ancestor` lies on the parent chain of `descendant`
    /// (excluding equality).
    fn is_ancestor(&self, ancestor: Value, descendant: Value) -> bool {
        let mut cur = descendant;
        // Bounded walk: defends against accidental cycles in user impls.
        for _ in 0..64 {
            match self.parent(cur) {
                Some(p) if p == ancestor => return true,
                Some(p) => cur = p,
                None => return false,
            }
        }
        false
    }

    /// Whether the two values lie on a common ancestor chain (one is a
    /// generalisation of the other).
    fn related(&self, a: Value, b: Value) -> bool {
        a == b || self.is_ancestor(a, b) || self.is_ancestor(b, a)
    }

    /// Distance (#edges) from `v` to the hierarchy root; 0 for roots and
    /// values outside the hierarchy.
    fn depth(&self, v: Value) -> usize {
        let mut d = 0;
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
            if d >= 64 {
                break;
            }
        }
        d
    }
}

/// A flat hierarchy: no value has a parent. Useful as the default when no
/// world model is available.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHierarchy;

impl ValueHierarchy for NoHierarchy {
    fn parent(&self, _v: Value) -> Option<Value> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::FxHashMap;

    #[test]
    fn numeric_roundtrip() {
        assert_eq!(Numeric::from_f64(1962.0).to_f64(), 1962.0);
        assert_eq!(Numeric::from_f64(8.849).0, 8849);
        assert_eq!(Numeric::from_i64(7).to_f64(), 7.0);
    }

    #[test]
    fn numeric_equality_is_exact() {
        assert_eq!(Numeric::from_f64(0.1), Numeric::from_f64(0.1));
        assert_ne!(Numeric::from_f64(8.849), Numeric::from_f64(8.850));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Entity(EntityId(3)).as_entity(), Some(EntityId(3)));
        assert_eq!(Value::Entity(EntityId(3)).as_num(), None);
        assert_eq!(Value::Str(StrId(9)).as_str_id(), Some(StrId(9)));
        assert_eq!(Value::Num(Numeric(5)).as_num(), Some(Numeric(5)));
    }

    #[test]
    fn encode_distinguishes_variants() {
        let a = Value::Entity(EntityId(1)).encode();
        let b = Value::Str(StrId(1)).encode();
        let c = Value::Num(Numeric(1)).encode();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    /// A toy hierarchy: 1 -> 2 -> 3 (child -> parent).
    struct Chain;
    impl ValueHierarchy for Chain {
        fn parent(&self, v: Value) -> Option<Value> {
            match v {
                Value::Entity(EntityId(1)) => Some(Value::Entity(EntityId(2))),
                Value::Entity(EntityId(2)) => Some(Value::Entity(EntityId(3))),
                _ => None,
            }
        }
    }

    #[test]
    fn hierarchy_ancestor_walks_chain() {
        let h = Chain;
        let sf = Value::Entity(EntityId(1));
        let ca = Value::Entity(EntityId(2));
        let usa = Value::Entity(EntityId(3));
        assert!(h.is_ancestor(usa, sf));
        assert!(h.is_ancestor(ca, sf));
        assert!(!h.is_ancestor(sf, usa));
        assert!(h.related(sf, usa));
        assert!(h.related(sf, sf));
        assert!(!h.related(ca, Value::Entity(EntityId(77))));
        assert_eq!(h.depth(sf), 2);
        assert_eq!(h.depth(usa), 0);
    }

    #[test]
    fn no_hierarchy_is_flat() {
        let h = NoHierarchy;
        let a = Value::Entity(EntityId(1));
        let b = Value::Entity(EntityId(2));
        assert!(!h.is_ancestor(a, b));
        assert!(!h.related(a, b));
        assert_eq!(h.depth(a), 0);
    }

    #[test]
    fn values_as_map_keys() {
        let mut m: FxHashMap<Value, u32> = FxHashMap::default();
        m.insert(Value::Entity(EntityId(1)), 1);
        m.insert(Value::Str(StrId(1)), 2);
        m.insert(Value::Num(Numeric(1)), 3);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn hierarchy_walk_is_bounded_on_cycles() {
        /// Degenerate impl with a self-loop.
        struct Cyclic;
        impl ValueHierarchy for Cyclic {
            fn parent(&self, v: Value) -> Option<Value> {
                Some(v)
            }
        }
        let h = Cyclic;
        let v = Value::Entity(EntityId(1));
        // Must terminate rather than loop forever.
        assert!(!h.is_ancestor(Value::Entity(EntityId(2)), v));
        assert_eq!(h.depth(v), 64);
    }
}
