//! Error-taxonomy types (the paper's Fig. 17 automated error analysis).
//!
//! §3.2.1 / Fig. 17: the paper samples high-confidence false positives and
//! classifies them into **wrong-but-general values** (a correct but less
//! specific value, e.g. *South America* instead of *Chile*), **LCWA
//! artifacts** (true values the gold list simply does not record),
//! **systematic extraction errors** (the same wrong triple produced by one
//! or two extractors on many pages) and **entity / triple-linkage
//! mistakes**. The `kf-diagnose` crate implements heuristic classifiers
//! producing these categories; this module holds the shared vocabulary —
//! the category enum, per-dimension breakdowns, the heuristic-vs-injected
//! confusion matrix, and the assembled [`TaxonomyReport`] that `kf-eval`
//! embeds in `report.json`.
//!
//! Every type implements [`KvCodec`], so taxonomy cells can
//! ride through the MapReduce engine's external shuffle and whole reports
//! serialize to the same hand-rolled binary format as spill files
//! (extending codec coverage toward whole-output serialization, since the
//! vendored serde shim is derive-only).

use crate::codec::KvCodec;

/// The Fig. 17 error categories, as produced by the heuristic classifiers.
///
/// The same four-way split doubles as the *injected* ground-truth category
/// space: the synthetic corpus tags every extraction with its generator
/// outcome, which `kf-synth` maps onto these categories so the heuristic
/// attribution can be scored against the truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum ErrorCategory {
    /// A correct but more general (or more specific) hierarchy value —
    /// true in the world, false under the gold list (Fig. 17
    /// "specific/general value").
    WrongButGeneral = 0,
    /// A plausibly-true value the gold list does not record — the local
    /// closed-world assumption labelled a missing truth false.
    LcwaArtifact = 1,
    /// A systematic (pattern, data item) extraction breakage: the same
    /// wrong triple produced on many pages by one or two extractors.
    SystematicExtraction = 2,
    /// An entity-linkage, predicate-linkage or triple-identification
    /// mistake: the wrong subject, predicate or junk object.
    LinkageError = 3,
}

impl ErrorCategory {
    /// All categories, in index order.
    pub const ALL: [ErrorCategory; 4] = [
        ErrorCategory::WrongButGeneral,
        ErrorCategory::LcwaArtifact,
        ErrorCategory::SystematicExtraction,
        ErrorCategory::LinkageError,
    ];

    /// Number of categories.
    pub const COUNT: usize = 4;

    /// Stable machine-readable name (used as the `report.json` key).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCategory::WrongButGeneral => "wrong_but_general",
            ErrorCategory::LcwaArtifact => "lcwa_artifact",
            ErrorCategory::SystematicExtraction => "systematic_extraction",
            ErrorCategory::LinkageError => "linkage_error",
        }
    }

    /// Dense index into [`CategoryCounts`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`ErrorCategory::index`]; `None` for out-of-range tags.
    pub fn from_index(i: usize) -> Option<ErrorCategory> {
        ErrorCategory::ALL.get(i).copied()
    }
}

/// How a false positive's support spreads across the provenance
/// dimensions (pages × extractors) — the provenance-granularity axis of
/// the taxonomy. Systematic errors concentrate in
/// [`Spread::FewExtractorsManyPages`]; faithfully extracted
/// (LCWA-artifact) triples sit in the many-extractor class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Spread {
    /// One page, any number of extractors reading it.
    SinglePage = 0,
    /// Several pages, at most two distinct extractors.
    FewExtractorsManyPages = 1,
    /// Several pages, three or more distinct extractors.
    ManyExtractorsManyPages = 2,
}

impl Spread {
    /// All spread classes, in index order.
    pub const ALL: [Spread; 3] = [
        Spread::SinglePage,
        Spread::FewExtractorsManyPages,
        Spread::ManyExtractorsManyPages,
    ];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Spread::SinglePage => "single_page",
            Spread::FewExtractorsManyPages => "few_extractors_many_pages",
            Spread::ManyExtractorsManyPages => "many_extractors_many_pages",
        }
    }

    /// Classify a support shape.
    pub fn of(n_extractors: u16, n_pages: u32) -> Spread {
        if n_pages <= 1 {
            Spread::SinglePage
        } else if n_extractors <= 2 {
            Spread::FewExtractorsManyPages
        } else {
            Spread::ManyExtractorsManyPages
        }
    }
}

/// The hostile-corpus phenomena the generator can inject (`kf-synth`
/// scenario presets). Each phenomenon carries its own ground truth
/// (`Corpus::scenario_truth` in `kf-synth` joins fused triples to the
/// phenomenon that produced them), so the scenario matrix measures method
/// degradation against what was actually injected instead of assuming it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum ScenarioPhenomenon {
    /// A record replicated by a correlated (copying) extractor.
    Copied = 0,
    /// A spam claim: one wrong voice per item pushed by many low-quality
    /// pages.
    Spam = 1,
    /// A stale claim from before a mid-corpus truth flip.
    Drift = 2,
    /// A linkage mistake on an inflated confusable-entity surface.
    Linkage = 3,
}

impl ScenarioPhenomenon {
    /// All phenomena, in index order.
    pub const ALL: [ScenarioPhenomenon; 4] = [
        ScenarioPhenomenon::Copied,
        ScenarioPhenomenon::Spam,
        ScenarioPhenomenon::Drift,
        ScenarioPhenomenon::Linkage,
    ];

    /// Stable machine-readable name (used as the `scenarios.json` key).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioPhenomenon::Copied => "copied",
            ScenarioPhenomenon::Spam => "spam",
            ScenarioPhenomenon::Drift => "drift",
            ScenarioPhenomenon::Linkage => "linkage",
        }
    }

    /// Dense index (0..4).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`ScenarioPhenomenon::index`]; `None` when out of range.
    pub fn from_index(i: usize) -> Option<ScenarioPhenomenon> {
        ScenarioPhenomenon::ALL.get(i).copied()
    }
}

/// One count per [`ErrorCategory`], indexed by [`ErrorCategory::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CategoryCounts(pub [u64; ErrorCategory::COUNT]);

impl CategoryCounts {
    /// The count for one category.
    #[inline]
    pub fn get(&self, c: ErrorCategory) -> u64 {
        self.0[c.index()]
    }

    /// Add `n` to a category.
    #[inline]
    pub fn add(&mut self, c: ErrorCategory, n: u64) {
        self.0[c.index()] += n;
    }

    /// Sum over all categories.
    #[inline]
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }
}

/// Taxonomy of one confidence band `[lo, hi)` (the last band is closed
/// above): how much labelled mass the band holds and how its false
/// positives classify.
#[derive(Debug, Clone, PartialEq)]
pub struct BandBreakdown {
    /// Inclusive lower probability edge.
    pub lo: f64,
    /// Exclusive upper probability edge (`1.0` band is closed above).
    pub hi: f64,
    /// Gold-labelled (true + false) predicted triples in the band.
    pub n_labelled: u64,
    /// Labelled true.
    pub n_true: u64,
    /// False positives by heuristic category. Invariant (pinned by the
    /// `kf-diagnose` proptests): `counts.total() == n_labelled - n_true` —
    /// the categories exactly partition the band's false positives.
    pub counts: CategoryCounts,
}

impl BandBreakdown {
    /// False positives in the band.
    #[inline]
    pub fn n_false(&self) -> u64 {
        self.n_labelled - self.n_true
    }
}

/// Taxonomy of one group along a secondary dimension (a predicate, an
/// extractor, or a [`Spread`] class).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupBreakdown {
    /// Raw dimension key (predicate id, extractor id, or spread index).
    pub key: u32,
    /// Human-readable label (predicate/extractor name, spread class name).
    pub label: String,
    /// False positives by heuristic category.
    pub counts: CategoryCounts,
}

/// One cell of the heuristic-vs-injected confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfusionCell {
    /// Category assigned by the heuristic classifier.
    pub heuristic: ErrorCategory,
    /// Ground-truth category injected by the corpus generator (dominant
    /// outcome over the triple's extraction records).
    pub injected: ErrorCategory,
    /// Number of false positives in the cell.
    pub count: u64,
}

/// Attribution accuracy for one injected category: of the false positives
/// the generator tagged with this category, how many the heuristics
/// attributed correctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CategoryAccuracy {
    /// Correctly attributed false positives.
    pub correct: u64,
    /// All false positives with this injected category.
    pub total: u64,
}

impl CategoryAccuracy {
    /// `correct / total` (`NaN` when the category is empty).
    pub fn accuracy(&self) -> f64 {
        self.correct as f64 / self.total as f64
    }
}

/// The assembled Fig. 17-style taxonomy of one fusion run's
/// high-confidence false positives.
///
/// Produced by `kf-diagnose`, embedded per method in `kf-eval`'s
/// `report.json`. Everything is deterministic for a fixed corpus and
/// configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TaxonomyReport {
    /// Per confidence band, ascending by `lo`.
    pub bands: Vec<BandBreakdown>,
    /// Per predicate (only predicates with at least one false positive),
    /// ascending by key.
    pub predicates: Vec<GroupBreakdown>,
    /// Per supporting extractor (a false positive counts toward every
    /// extractor that produced it), ascending by key.
    pub extractors: Vec<GroupBreakdown>,
    /// Per support-spread class, ascending by key.
    pub spread: Vec<GroupBreakdown>,
    /// Per injected scenario phenomenon (key = [`ScenarioPhenomenon`]
    /// index, only phenomena with at least one false positive), ascending
    /// by key. Empty when no scenario ground truth was supplied — the
    /// default corpus injects none.
    pub scenarios: Vec<GroupBreakdown>,
    /// Heuristic-vs-injected confusion matrix (only non-empty cells),
    /// ordered by (heuristic, injected). Empty when no ground truth was
    /// supplied.
    pub confusion: Vec<ConfusionCell>,
    /// Mean final learned accuracy of the provenances supporting each
    /// category's false positives — systematic errors ride on provenances
    /// the fusion *trusts*. Empty when no attribution was supplied.
    pub mean_prov_accuracy: Vec<(ErrorCategory, f64)>,
    /// Attribution accuracy for injected systematic errors (the CI gate).
    pub systematic_attribution: Option<CategoryAccuracy>,
    /// Attribution accuracy for injected generalized values (the CI gate).
    pub generalized_attribution: Option<CategoryAccuracy>,
    /// All classified false positives across bands.
    pub n_false_positives: u64,
    /// All labelled predicted triples across bands.
    pub n_labelled: u64,
}

impl TaxonomyReport {
    /// Total false-positive mass of one category across all bands.
    pub fn category_mass(&self, c: ErrorCategory) -> u64 {
        self.bands.iter().map(|b| b.counts.get(c)).sum()
    }

    /// Fraction of false-positive mass in one category (`NaN` when there
    /// are no false positives).
    pub fn category_share(&self, c: ErrorCategory) -> f64 {
        self.category_mass(c) as f64 / self.n_false_positives as f64
    }
}

// ---- KvCodec impls -------------------------------------------------------

impl KvCodec for ErrorCategory {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        ErrorCategory::from_index(u8::decode(input)? as usize)
    }
}

impl KvCodec for Spread {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Spread::ALL.get(u8::decode(input)? as usize).copied()
    }
}

impl KvCodec for CategoryCounts {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        for n in &self.0 {
            n.encode(out);
        }
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let mut counts = [0u64; ErrorCategory::COUNT];
        for slot in &mut counts {
            *slot = u64::decode(input)?;
        }
        Some(CategoryCounts(counts))
    }
}

impl KvCodec for BandBreakdown {
    fn encode(&self, out: &mut Vec<u8>) {
        self.lo.encode(out);
        self.hi.encode(out);
        self.n_labelled.encode(out);
        self.n_true.encode(out);
        self.counts.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(BandBreakdown {
            lo: f64::decode(input)?,
            hi: f64::decode(input)?,
            n_labelled: u64::decode(input)?,
            n_true: u64::decode(input)?,
            counts: CategoryCounts::decode(input)?,
        })
    }
}

impl KvCodec for GroupBreakdown {
    fn encode(&self, out: &mut Vec<u8>) {
        self.key.encode(out);
        self.label.encode(out);
        self.counts.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(GroupBreakdown {
            key: u32::decode(input)?,
            label: String::decode(input)?,
            counts: CategoryCounts::decode(input)?,
        })
    }
}

impl KvCodec for ConfusionCell {
    fn encode(&self, out: &mut Vec<u8>) {
        self.heuristic.encode(out);
        self.injected.encode(out);
        self.count.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(ConfusionCell {
            heuristic: ErrorCategory::decode(input)?,
            injected: ErrorCategory::decode(input)?,
            count: u64::decode(input)?,
        })
    }
}

impl KvCodec for CategoryAccuracy {
    fn encode(&self, out: &mut Vec<u8>) {
        self.correct.encode(out);
        self.total.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(CategoryAccuracy {
            correct: u64::decode(input)?,
            total: u64::decode(input)?,
        })
    }
}

impl KvCodec for ScenarioPhenomenon {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        ScenarioPhenomenon::from_index(u8::decode(input)? as usize)
    }
}

impl KvCodec for TaxonomyReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.bands.encode(out);
        self.predicates.encode(out);
        self.extractors.encode(out);
        self.spread.encode(out);
        self.scenarios.encode(out);
        self.confusion.encode(out);
        self.mean_prov_accuracy.encode(out);
        self.systematic_attribution.encode(out);
        self.generalized_attribution.encode(out);
        self.n_false_positives.encode(out);
        self.n_labelled.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(TaxonomyReport {
            bands: Vec::decode(input)?,
            predicates: Vec::decode(input)?,
            extractors: Vec::decode(input)?,
            spread: Vec::decode(input)?,
            scenarios: Vec::decode(input)?,
            confusion: Vec::decode(input)?,
            mean_prov_accuracy: Vec::decode(input)?,
            systematic_attribution: Option::decode(input)?,
            generalized_attribution: Option::decode(input)?,
            n_false_positives: u64::decode(input)?,
            n_labelled: u64::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: KvCodec + PartialEq + std::fmt::Debug>(x: T) {
        let mut buf = Vec::new();
        x.encode(&mut buf);
        let mut input = &buf[..];
        assert_eq!(T::decode(&mut input), Some(x));
        assert!(input.is_empty());
    }

    fn sample_report() -> TaxonomyReport {
        let mut counts = CategoryCounts::default();
        counts.add(ErrorCategory::SystematicExtraction, 7);
        counts.add(ErrorCategory::LcwaArtifact, 3);
        TaxonomyReport {
            bands: vec![BandBreakdown {
                lo: 0.9,
                hi: 1.0,
                n_labelled: 20,
                n_true: 10,
                counts,
            }],
            predicates: vec![GroupBreakdown {
                key: 3,
                label: "predicate_3".into(),
                counts,
            }],
            extractors: vec![GroupBreakdown {
                key: 1,
                label: "TXT2".into(),
                counts,
            }],
            spread: vec![GroupBreakdown {
                key: 1,
                label: Spread::FewExtractorsManyPages.name().into(),
                counts,
            }],
            scenarios: vec![GroupBreakdown {
                key: ScenarioPhenomenon::Spam.index() as u32,
                label: ScenarioPhenomenon::Spam.name().into(),
                counts,
            }],
            confusion: vec![ConfusionCell {
                heuristic: ErrorCategory::SystematicExtraction,
                injected: ErrorCategory::SystematicExtraction,
                count: 6,
            }],
            mean_prov_accuracy: vec![(ErrorCategory::SystematicExtraction, 0.91)],
            systematic_attribution: Some(CategoryAccuracy {
                correct: 6,
                total: 7,
            }),
            generalized_attribution: None,
            n_false_positives: 10,
            n_labelled: 20,
        }
    }

    #[test]
    fn category_names_are_distinct_and_indices_roundtrip() {
        let names: std::collections::HashSet<_> =
            ErrorCategory::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), ErrorCategory::COUNT);
        for c in ErrorCategory::ALL {
            assert_eq!(ErrorCategory::from_index(c.index()), Some(c));
        }
        assert_eq!(ErrorCategory::from_index(4), None);
    }

    #[test]
    fn phenomenon_names_are_distinct_and_indices_roundtrip() {
        let names: std::collections::HashSet<_> =
            ScenarioPhenomenon::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), ScenarioPhenomenon::ALL.len());
        for p in ScenarioPhenomenon::ALL {
            assert_eq!(ScenarioPhenomenon::from_index(p.index()), Some(p));
        }
        assert_eq!(ScenarioPhenomenon::from_index(4), None);
        assert_eq!(ScenarioPhenomenon::decode(&mut &[7u8][..]), None);
        roundtrip(ScenarioPhenomenon::Drift);
    }

    #[test]
    fn spread_classification() {
        assert_eq!(Spread::of(5, 1), Spread::SinglePage);
        assert_eq!(Spread::of(1, 9), Spread::FewExtractorsManyPages);
        assert_eq!(Spread::of(2, 2), Spread::FewExtractorsManyPages);
        assert_eq!(Spread::of(3, 2), Spread::ManyExtractorsManyPages);
    }

    #[test]
    fn counts_partition_arithmetic() {
        let mut c = CategoryCounts::default();
        c.add(ErrorCategory::WrongButGeneral, 2);
        c.add(ErrorCategory::LinkageError, 5);
        assert_eq!(c.total(), 7);
        assert_eq!(c.get(ErrorCategory::LinkageError), 5);
        assert_eq!(c.get(ErrorCategory::LcwaArtifact), 0);
    }

    #[test]
    fn report_masses_and_shares() {
        let r = sample_report();
        assert_eq!(r.category_mass(ErrorCategory::SystematicExtraction), 7);
        assert!((r.category_share(ErrorCategory::SystematicExtraction) - 0.7).abs() < 1e-12);
        assert_eq!(r.bands[0].n_false(), 10);
        assert_eq!(
            r.systematic_attribution.unwrap().accuracy(),
            6.0 / 7.0,
            "attribution accuracy"
        );
    }

    #[test]
    fn taxonomy_types_roundtrip_through_kvcodec() {
        roundtrip(ErrorCategory::LcwaArtifact);
        roundtrip(Spread::ManyExtractorsManyPages);
        roundtrip(CategoryCounts([1, 2, 3, 4]));
        roundtrip(sample_report());
    }

    #[test]
    fn malformed_category_tags_are_rejected() {
        assert_eq!(ErrorCategory::decode(&mut &[9u8][..]), None);
        assert_eq!(Spread::decode(&mut &[3u8][..]), None);
    }

    #[test]
    fn truncated_report_is_rejected() {
        let mut buf = Vec::new();
        sample_report().encode(&mut buf);
        for cut in 0..buf.len() {
            let mut input = &buf[..cut];
            assert_eq!(
                TaxonomyReport::decode(&mut input),
                None,
                "cut at {cut} must fail"
            );
        }
    }
}
