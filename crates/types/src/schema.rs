//! KB schema: types, predicates, entities (§3.1.1).
//!
//! Mirrors the Freebase setup the paper builds on: entities belong to types
//! from a shallow hierarchy; each predicate is associated with a single type
//! and is either *functional* (single true value per data item, e.g. birth
//! date) or *non-functional* (multiple truths, e.g. children). Table 3 shows
//! 72% of predicates (76% of data items) are non-functional, which drives
//! one of the paper's main error modes.

use crate::codec::KvCodec;
use crate::ids::{EntityId, PredicateId, StrId, TypeId};
use crate::intern::Interner;
use serde::{Deserialize, Serialize};

/// What kind of object values a predicate takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueKind {
    /// Object is a KB entity (23M of the paper's unique objects).
    Entity,
    /// Object is a raw string (80M).
    Str,
    /// Object is a number (1M).
    Num,
}

/// Schema information for one predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredicateInfo {
    /// Human-readable name, e.g. `people/person/birth_date`.
    pub name: String,
    /// The type this predicate is an attribute of.
    pub domain: TypeId,
    /// Single-truth (functional) or multi-truth (non-functional).
    pub functional: bool,
    /// Kind of object values.
    pub value_kind: ValueKind,
}

/// Catalog entry for one entity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EntityInfo {
    /// Interned canonical name.
    pub name: StrId,
    /// Primary type.
    pub ty: TypeId,
}

/// The schema catalog: types, predicates, entities and the shared string
/// interner. Built once (by `kf-synth` or by a user loading real data),
/// then read-only during fusion.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    types: Vec<String>,
    predicates: Vec<PredicateInfo>,
    entities: Vec<EntityInfo>,
    /// Interner for entity names and string object values.
    pub strings: Interner,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a type, returning its id.
    pub fn add_type(&mut self, name: impl Into<String>) -> TypeId {
        let id = TypeId::from_index(self.types.len());
        self.types.push(name.into());
        id
    }

    /// Register a predicate, returning its id.
    pub fn add_predicate(&mut self, info: PredicateInfo) -> PredicateId {
        let id = PredicateId::from_index(self.predicates.len());
        self.predicates.push(info);
        id
    }

    /// Register an entity, returning its id.
    pub fn add_entity(&mut self, name: &str, ty: TypeId) -> EntityId {
        let name = self.strings.intern(name);
        let id = EntityId::from_index(self.entities.len());
        self.entities.push(EntityInfo { name, ty });
        id
    }

    /// Type name lookup.
    pub fn type_name(&self, id: TypeId) -> &str {
        &self.types[id.index()]
    }

    /// Predicate schema lookup.
    pub fn predicate(&self, id: PredicateId) -> &PredicateInfo {
        &self.predicates[id.index()]
    }

    /// Entity catalog lookup.
    pub fn entity(&self, id: EntityId) -> EntityInfo {
        self.entities[id.index()]
    }

    /// Entity display name.
    pub fn entity_name(&self, id: EntityId) -> &str {
        self.strings.resolve(self.entities[id.index()].name)
    }

    /// Whether `p` is functional (single-truth).
    pub fn is_functional(&self, p: PredicateId) -> bool {
        self.predicates[p.index()].functional
    }

    /// Number of registered types.
    pub fn n_types(&self) -> usize {
        self.types.len()
    }

    /// Number of registered predicates.
    pub fn n_predicates(&self) -> usize {
        self.predicates.len()
    }

    /// Number of registered entities.
    pub fn n_entities(&self) -> usize {
        self.entities.len()
    }

    /// Iterate over predicate ids.
    pub fn predicate_ids(&self) -> impl Iterator<Item = PredicateId> + '_ {
        (0..self.predicates.len()).map(PredicateId::from_index)
    }

    /// Iterate over entity ids.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> + '_ {
        (0..self.entities.len()).map(EntityId::from_index)
    }

    /// Fraction of predicates that are functional (Table 3, first column).
    pub fn functional_predicate_fraction(&self) -> f64 {
        if self.predicates.is_empty() {
            return 0.0;
        }
        let f = self.predicates.iter().filter(|p| p.functional).count();
        f as f64 / self.predicates.len() as f64
    }
}

// ---- KvCodec impls (checkpointing; see `crate::checkpoint`) --------------

impl KvCodec for ValueKind {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            ValueKind::Entity => 0,
            ValueKind::Str => 1,
            ValueKind::Num => 2,
        });
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(ValueKind::Entity),
            1 => Some(ValueKind::Str),
            2 => Some(ValueKind::Num),
            _ => None,
        }
    }
}

impl KvCodec for PredicateInfo {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.domain.encode(out);
        self.functional.encode(out);
        self.value_kind.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(PredicateInfo {
            name: String::decode(input)?,
            domain: TypeId::decode(input)?,
            functional: bool::decode(input)?,
            value_kind: ValueKind::decode(input)?,
        })
    }
}

impl KvCodec for EntityInfo {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.ty.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(EntityInfo {
            name: StrId::decode(input)?,
            ty: TypeId::decode(input)?,
        })
    }
}

impl KvCodec for Catalog {
    fn encode(&self, out: &mut Vec<u8>) {
        self.types.encode(out);
        self.predicates.encode(out);
        self.entities.encode(out);
        self.strings.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(Catalog {
            types: Vec::decode(input)?,
            predicates: Vec::decode(input)?,
            entities: Vec::decode(input)?,
            strings: Interner::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catalog {
        let mut c = Catalog::new();
        let person = c.add_type("people/person");
        let film = c.add_type("film/film");
        c.add_predicate(PredicateInfo {
            name: "people/person/birth_date".into(),
            domain: person,
            functional: true,
            value_kind: ValueKind::Num,
        });
        c.add_predicate(PredicateInfo {
            name: "film/film/actor".into(),
            domain: film,
            functional: false,
            value_kind: ValueKind::Entity,
        });
        c.add_entity("Tom Cruise", person);
        c.add_entity("Top Gun", film);
        c
    }

    #[test]
    fn ids_are_dense_per_kind() {
        let c = sample();
        assert_eq!(c.n_types(), 2);
        assert_eq!(c.n_predicates(), 2);
        assert_eq!(c.n_entities(), 2);
        assert_eq!(c.type_name(TypeId(0)), "people/person");
        assert_eq!(c.entity_name(EntityId(1)), "Top Gun");
    }

    #[test]
    fn functionality_flags() {
        let c = sample();
        assert!(c.is_functional(PredicateId(0)));
        assert!(!c.is_functional(PredicateId(1)));
        assert!((c.functional_predicate_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_catalog_fraction_is_zero() {
        assert_eq!(Catalog::new().functional_predicate_fraction(), 0.0);
    }

    #[test]
    fn entity_names_are_interned() {
        let mut c = Catalog::new();
        let t = c.add_type("t");
        let a = c.add_entity("same-name", t);
        let b = c.add_entity("same-name", t);
        assert_ne!(a, b); // entities are distinct...
        assert_eq!(c.entity(a).name, c.entity(b).name); // ...names shared
    }

    #[test]
    fn kvcodec_roundtrip_restores_lookups() {
        let c = sample();
        let mut buf = Vec::new();
        c.encode(&mut buf);
        let mut input = &buf[..];
        let back = Catalog::decode(&mut input).unwrap();
        assert!(input.is_empty());
        assert_eq!(back, c);
        assert_eq!(back.type_name(TypeId(1)), "film/film");
        assert_eq!(back.entity_name(EntityId(0)), "Tom Cruise");
        assert!(back.is_functional(PredicateId(0)));
        // The decoded interner's reverse index works (lookup, not just
        // resolve).
        assert_eq!(back.strings.lookup("Top Gun"), c.strings.lookup("Top Gun"));
        for cut in 0..buf.len() {
            assert_eq!(Catalog::decode(&mut &buf[..cut]), None, "cut {cut}");
        }
    }

    #[test]
    fn value_kind_tags_reject_garbage() {
        for k in [ValueKind::Entity, ValueKind::Str, ValueKind::Num] {
            let mut buf = Vec::new();
            k.encode(&mut buf);
            assert_eq!(ValueKind::decode(&mut &buf[..]), Some(k));
        }
        assert_eq!(ValueKind::decode(&mut &[7u8][..]), None);
    }

    #[test]
    fn iterators_cover_all_ids() {
        let c = sample();
        assert_eq!(c.predicate_ids().count(), 2);
        assert_eq!(c.entity_ids().count(), 2);
    }
}
