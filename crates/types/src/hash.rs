//! Fast non-cryptographic hashing for the integer-id keys used throughout
//! the workspace.
//!
//! The default `SipHash 1-3` hasher is robust against HashDoS but slow for
//! the short integer keys that dominate fusion workloads. This is the
//! classic multiplicative "Fx" construction (as used by rustc); we implement
//! it locally (~30 lines) rather than pulling in an extra dependency.
//! Inputs here are internally generated ids, never attacker-controlled, so
//! the weaker collision resistance is acceptable.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplicative hasher.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

/// The golden-ratio-derived odd constant used by the Fx family.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = 0u64;
            for (i, &b) in tail.iter().enumerate() {
                word |= (b as u64) << (8 * i);
            }
            self.add_to_hash(word);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// [`FxHasher`] with a final avalanche (xor-shift-multiply), for keys whose
/// entropy lives in the *high* bits — e.g. the packed `u128`
/// `ProvenanceKey` words, where a page id occupies bits 80..112.
///
/// The bare multiplicative core only propagates entropy upward, so such
/// keys leave the hash's low bits near-constant — and hashbrown derives
/// the bucket index from the low bits (`hash & (buckets - 1)`), which
/// degrades the table to a linked list (an observed 7× slowdown in
/// grouping). The avalanche folds the high bits back down. Plain integer
/// ids don't need it; packed/wide keys do.
#[derive(Default, Clone, Copy)]
pub struct FxMixHasher {
    inner: FxHasher,
}

impl Hasher for FxMixHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // fmix64-style finalizer (MurmurHash3).
        let mut h = self.inner.finish();
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        self.inner.write(bytes);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.inner.write_u8(n);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.inner.write_u16(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.inner.write_u32(n);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.inner.write_u64(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.inner.write_u64(n as u64);
        self.inner.write_u64((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.inner.write_usize(n);
    }
}

/// `BuildHasher` for [`FxMixHasher`].
pub type FxMixBuildHasher = BuildHasherDefault<FxMixHasher>;

/// `HashMap` for wide/packed keys (see [`FxMixHasher`]).
pub type FxMixHashMap<K, V> = HashMap<K, V, FxMixBuildHasher>;

/// `HashSet` for wide/packed keys (see [`FxMixHasher`]).
pub type FxMixHashSet<T> = HashSet<T, FxMixBuildHasher>;

/// Hash a single `u64` with the Fx construction; handy for cheap
/// deterministic partitioning decisions.
#[inline]
pub fn hash_u64(word: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(word);
    h.finish()
}

/// Hash any `Hash` value with the Fx construction.
#[inline]
pub fn hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_deterministic() {
        assert_eq!(hash_u64(42), hash_u64(42));
        assert_eq!(hash_one(&"abc"), hash_one(&"abc"));
    }

    #[test]
    fn different_inputs_usually_differ() {
        // Not a collision-resistance proof, just a sanity net against a
        // degenerate implementation that maps everything to one bucket.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(hash_u64(i));
        }
        assert!(seen.len() > 9_990, "too many collisions: {}", seen.len());
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        // 9 bytes exercises both the 8-byte chunk and the 1-byte tail.
        let a = {
            let mut h = FxHasher::default();
            h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
            h.finish()
        };
        let b = {
            let mut h = FxHasher::default();
            h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
            h.finish()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn mix_hasher_spreads_high_bit_entropy_into_low_bits() {
        use std::hash::BuildHasher;
        // Keys varying only in bits 80..112 — the packed ExtractorPage
        // shape that collapsed the plain Fx bucket index.
        let build = FxMixBuildHasher::default();
        let mut low16 = std::collections::HashSet::new();
        for page in 0u128..4_096 {
            let key: u128 = (7u128 << 112) | (page << 80) | 0b00011;
            low16.insert(build.hash_one(key) & 0xffff);
        }
        // With the avalanche, ≥ 90% of the low-16-bit values are distinct;
        // without it the count is single-digit.
        assert!(
            low16.len() > 3_700,
            "only {} distinct low words",
            low16.len()
        );
    }

    #[test]
    fn mix_hasher_is_deterministic_and_matches_equality() {
        use std::hash::BuildHasher;
        let build = FxMixBuildHasher::default();
        let h = |k: u128| build.hash_one(k);
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }

    #[test]
    fn empty_write_is_identity() {
        let mut h = FxHasher::default();
        h.write(&[]);
        assert_eq!(h.finish(), 0);
    }
}
