//! Fast non-cryptographic hashing for the integer-id keys used throughout
//! the workspace.
//!
//! The default `SipHash 1-3` hasher is robust against HashDoS but slow for
//! the short integer keys that dominate fusion workloads. This is the
//! classic multiplicative "Fx" construction (as used by rustc); we implement
//! it locally (~30 lines) rather than pulling in an extra dependency.
//! Inputs here are internally generated ids, never attacker-controlled, so
//! the weaker collision resistance is acceptable.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplicative hasher.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

/// The golden-ratio-derived odd constant used by the Fx family.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = 0u64;
            for (i, &b) in tail.iter().enumerate() {
                word |= (b as u64) << (8 * i);
            }
            self.add_to_hash(word);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hash a single `u64` with the Fx construction; handy for cheap
/// deterministic partitioning decisions.
#[inline]
pub fn hash_u64(word: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(word);
    h.finish()
}

/// Hash any `Hash` value with the Fx construction.
#[inline]
pub fn hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_deterministic() {
        assert_eq!(hash_u64(42), hash_u64(42));
        assert_eq!(hash_one(&"abc"), hash_one(&"abc"));
    }

    #[test]
    fn different_inputs_usually_differ() {
        // Not a collision-resistance proof, just a sanity net against a
        // degenerate implementation that maps everything to one bucket.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(hash_u64(i));
        }
        assert!(seen.len() > 9_990, "too many collisions: {}", seen.len());
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        // 9 bytes exercises both the 8-byte chunk and the 1-byte tail.
        let a = {
            let mut h = FxHasher::default();
            h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
            h.finish()
        };
        let b = {
            let mut h = FxHasher::default();
            h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
            h.finish()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }

    #[test]
    fn empty_write_is_identity() {
        let mut h = FxHasher::default();
        h.write(&[]);
        assert_eq!(h.finish(), 0);
    }
}
