//! # kf-types — data model for knowledge fusion
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: compact integer identifiers for entities, predicates, web
//! sources and extractors; [`Value`]s and [`Triple`]s in the Freebase-style
//! `(subject, predicate, object)` shape; [`Extraction`] records carrying the
//! rich provenance the paper relies on (extractor, URL, site, pattern,
//! confidence); [`Granularity`]-parameterised provenance keys (§4.3.1 of the
//! paper); the [`GoldStandard`] with its local closed-world assumption
//! (LCWA) labelling (§3.2.1); [`KvCodec`], the hand-rolled binary
//! codec the MapReduce engine's external shuffle uses to spill grouped
//! partitions to sorted run files (the vendored serde shim is derive-only,
//! so real serialization lives here); and the [`checkpoint`] container —
//! magic bytes + format version + artifact kind over `KvCodec` payloads —
//! that corpus snapshots and shard reports persist through, including the
//! atomic write-then-rename helper shared with the spill writer.
//!
//! Everything here is deliberately plain data: `Copy` ids, interned strings,
//! and hash maps keyed by those ids using a fast multiplicative hasher
//! ([`hash::FxHasher`]), because these types sit on the hot path of a fusion
//! run over millions of extractions.

pub mod checkpoint;
pub mod codec;
pub mod extraction;
pub mod gold;
pub mod hash;
pub mod ids;
pub mod intern;
pub mod provenance;
pub mod schema;
pub mod stats;
pub mod taxonomy;
pub mod triple;
pub mod value;
pub mod wire;

pub use checkpoint::{ArtifactKind, CheckpointError, FORMAT_VERSION, MAGIC};
pub use codec::KvCodec;
pub use extraction::{Extraction, ExtractionBatch};
pub use gold::{GoldStandard, Label};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxMixBuildHasher, FxMixHashMap, FxMixHashSet};
pub use ids::{EntityId, ExtractorId, PageId, PatternId, PredicateId, SiteId, StrId, TypeId};
pub use intern::Interner;
pub use provenance::{Granularity, Provenance, ProvenanceKey};
pub use schema::{Catalog, EntityInfo, PredicateInfo, ValueKind};
pub use stats::{human_count, SkewSummary};
pub use taxonomy::{
    BandBreakdown, CategoryAccuracy, CategoryCounts, ConfusionCell, ErrorCategory, GroupBreakdown,
    ScenarioPhenomenon, Spread, TaxonomyReport,
};
pub use triple::{DataItem, Triple};
pub use value::{NoHierarchy, Numeric, Value, ValueHierarchy};
pub use wire::{read_frame, write_frame, TaskSpec, WireMsg, MAX_FRAME_BYTES, PROTOCOL_VERSION};
