//! Provenance records and granularity-parameterised provenance keys.
//!
//! The paper reduces the three-dimensional KF input to two dimensions by
//! treating an *(Extractor, URL)* pair as a data source, which it calls a
//! **provenance** (§4.1). §4.3.1 then shows that the *granularity* of this
//! key matters a lot for calibration: evaluating accuracy per
//! *(Extractor, Site, Predicate, Pattern)* performs best. [`Granularity`]
//! captures the choices studied in Figs. 9 and 10, and
//! [`ProvenanceKey::at`] projects a full [`Provenance`] record (plus the
//! triple's predicate) onto the chosen granularity.

use crate::ids::{ExtractorId, PageId, PatternId, PredicateId, SiteId};
use serde::{Deserialize, Serialize};

/// Full provenance of one extraction: which extractor produced it, from
/// which page (and the page's site), using which learned pattern.
///
/// This is the "rich provenance information" of §3.1.1 — much richer than
/// the bare source identity used in data fusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Provenance {
    /// The extractor that produced the triple.
    pub extractor: ExtractorId,
    /// The web page (URL) the triple was extracted from.
    pub page: PageId,
    /// The page's site (URL prefix up to the first `/`).
    pub site: SiteId,
    /// The extraction pattern used, or [`PatternId::NONE`] for pattern-free
    /// extractors (Table 2 "No pat.").
    pub pattern: PatternId,
}

impl Provenance {
    /// Construct a provenance record.
    pub fn new(extractor: ExtractorId, page: PageId, site: SiteId, pattern: PatternId) -> Self {
        Provenance {
            extractor,
            page,
            site,
            pattern,
        }
    }
}

/// The granularity at which provenance accuracy is evaluated (§4.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Granularity {
    /// *(Extractor, URL)* — the basic adaptation of §4.1.
    #[default]
    ExtractorPage,
    /// *(Extractor, Site)* — coarser source dimension.
    ExtractorSite,
    /// *(Extractor, Site, Predicate)*.
    ExtractorSitePredicate,
    /// *(Extractor, Site, Predicate, Pattern)* — the best setting in Fig. 10.
    ExtractorSitePredicatePattern,
    /// Extractor pattern only (Fig. 9 "Only ext"): ignores the source.
    ExtractorPatternOnly,
    /// URL only (Fig. 9 "Only src"): ignores the extractor.
    PageOnly,
}

impl Granularity {
    /// All granularities, in the order plotted by the paper.
    pub const ALL: [Granularity; 6] = [
        Granularity::ExtractorPage,
        Granularity::ExtractorSite,
        Granularity::ExtractorSitePredicate,
        Granularity::ExtractorSitePredicatePattern,
        Granularity::ExtractorPatternOnly,
        Granularity::PageOnly,
    ];

    /// Human-readable label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Granularity::ExtractorPage => "(Extractor, URL)",
            Granularity::ExtractorSite => "(Extractor, Site)",
            Granularity::ExtractorSitePredicate => "(Extractor, Site, Predicate)",
            Granularity::ExtractorSitePredicatePattern => "(Extractor, Site, Predicate, Pattern)",
            Granularity::ExtractorPatternOnly => "Only extractor (pattern)",
            Granularity::PageOnly => "Only source (URL)",
        }
    }
}

/// A provenance projected onto a [`Granularity`]: the unit whose accuracy
/// the fusion algorithms estimate. Fields not included in the granularity
/// are `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProvenanceKey {
    /// Extractor dimension, when included.
    pub extractor: Option<ExtractorId>,
    /// Page dimension, when included.
    pub page: Option<PageId>,
    /// Site dimension, when included.
    pub site: Option<SiteId>,
    /// Predicate dimension, when included.
    pub predicate: Option<PredicateId>,
    /// Pattern dimension, when included.
    pub pattern: Option<PatternId>,
}

impl ProvenanceKey {
    /// Project `prov` (for a triple with predicate `predicate`) onto
    /// granularity `g`.
    pub fn at(g: Granularity, prov: &Provenance, predicate: PredicateId) -> Self {
        let mut key = ProvenanceKey {
            extractor: None,
            page: None,
            site: None,
            predicate: None,
            pattern: None,
        };
        match g {
            Granularity::ExtractorPage => {
                key.extractor = Some(prov.extractor);
                key.page = Some(prov.page);
            }
            Granularity::ExtractorSite => {
                key.extractor = Some(prov.extractor);
                key.site = Some(prov.site);
            }
            Granularity::ExtractorSitePredicate => {
                key.extractor = Some(prov.extractor);
                key.site = Some(prov.site);
                key.predicate = Some(predicate);
            }
            Granularity::ExtractorSitePredicatePattern => {
                key.extractor = Some(prov.extractor);
                key.site = Some(prov.site);
                key.predicate = Some(predicate);
                key.pattern = Some(prov.pattern);
            }
            Granularity::ExtractorPatternOnly => {
                key.extractor = Some(prov.extractor);
                key.pattern = Some(prov.pattern);
            }
            Granularity::PageOnly => {
                key.page = Some(prov.page);
            }
        }
        key
    }

    /// Stable 64-bit mixing of the key for partitioning decisions.
    pub fn encode(&self) -> u64 {
        crate::hash::hash_one(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prov() -> Provenance {
        Provenance::new(ExtractorId(3), PageId(100), SiteId(7), PatternId(42))
    }

    #[test]
    fn extractor_page_key_ignores_site_and_pattern() {
        let k = ProvenanceKey::at(Granularity::ExtractorPage, &prov(), PredicateId(5));
        assert_eq!(k.extractor, Some(ExtractorId(3)));
        assert_eq!(k.page, Some(PageId(100)));
        assert_eq!(k.site, None);
        assert_eq!(k.predicate, None);
        assert_eq!(k.pattern, None);
    }

    #[test]
    fn finest_granularity_keeps_four_dimensions() {
        let k = ProvenanceKey::at(
            Granularity::ExtractorSitePredicatePattern,
            &prov(),
            PredicateId(5),
        );
        assert_eq!(k.extractor, Some(ExtractorId(3)));
        assert_eq!(k.page, None);
        assert_eq!(k.site, Some(SiteId(7)));
        assert_eq!(k.predicate, Some(PredicateId(5)));
        assert_eq!(k.pattern, Some(PatternId(42)));
    }

    #[test]
    fn page_only_drops_the_extractor() {
        let k = ProvenanceKey::at(Granularity::PageOnly, &prov(), PredicateId(5));
        assert_eq!(k.extractor, None);
        assert_eq!(k.page, Some(PageId(100)));
    }

    #[test]
    fn extractor_pattern_only_drops_the_source() {
        let k = ProvenanceKey::at(Granularity::ExtractorPatternOnly, &prov(), PredicateId(5));
        assert_eq!(k.extractor, Some(ExtractorId(3)));
        assert_eq!(k.pattern, Some(PatternId(42)));
        assert_eq!(k.page, None);
        assert_eq!(k.site, None);
    }

    #[test]
    fn same_site_pages_collapse_at_site_granularity() {
        let p1 = Provenance::new(ExtractorId(1), PageId(10), SiteId(7), PatternId::NONE);
        let p2 = Provenance::new(ExtractorId(1), PageId(11), SiteId(7), PatternId::NONE);
        let k1 = ProvenanceKey::at(Granularity::ExtractorSite, &p1, PredicateId(0));
        let k2 = ProvenanceKey::at(Granularity::ExtractorSite, &p2, PredicateId(0));
        assert_eq!(k1, k2);
        let k1p = ProvenanceKey::at(Granularity::ExtractorPage, &p1, PredicateId(0));
        let k2p = ProvenanceKey::at(Granularity::ExtractorPage, &p2, PredicateId(0));
        assert_ne!(k1p, k2p);
    }

    #[test]
    fn all_granularities_have_distinct_labels() {
        let labels: std::collections::HashSet<_> =
            Granularity::ALL.iter().map(|g| g.label()).collect();
        assert_eq!(labels.len(), Granularity::ALL.len());
    }

    #[test]
    fn encode_differs_across_granularities() {
        let p = prov();
        let a = ProvenanceKey::at(Granularity::ExtractorPage, &p, PredicateId(5)).encode();
        let b = ProvenanceKey::at(Granularity::ExtractorSite, &p, PredicateId(5)).encode();
        assert_ne!(a, b);
    }
}
