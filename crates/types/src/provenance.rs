//! Provenance records and granularity-parameterised provenance keys.
//!
//! The paper reduces the three-dimensional KF input to two dimensions by
//! treating an *(Extractor, URL)* pair as a data source, which it calls a
//! **provenance** (§4.1). §4.3.1 then shows that the *granularity* of this
//! key matters a lot for calibration: evaluating accuracy per
//! *(Extractor, Site, Predicate, Pattern)* performs best. [`Granularity`]
//! captures the choices studied in Figs. 9 and 10, and
//! [`ProvenanceKey::at`] projects a full [`Provenance`] record (plus the
//! triple's predicate) onto the chosen granularity.

use crate::ids::{ExtractorId, PageId, PatternId, PredicateId, SiteId};
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};

/// Full provenance of one extraction: which extractor produced it, from
/// which page (and the page's site), using which learned pattern.
///
/// This is the "rich provenance information" of §3.1.1 — much richer than
/// the bare source identity used in data fusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Provenance {
    /// The extractor that produced the triple.
    pub extractor: ExtractorId,
    /// The web page (URL) the triple was extracted from.
    pub page: PageId,
    /// The page's site (URL prefix up to the first `/`).
    pub site: SiteId,
    /// The extraction pattern used, or [`PatternId::NONE`] for pattern-free
    /// extractors (Table 2 "No pat.").
    pub pattern: PatternId,
}

impl Provenance {
    /// Construct a provenance record.
    pub fn new(extractor: ExtractorId, page: PageId, site: SiteId, pattern: PatternId) -> Self {
        Provenance {
            extractor,
            page,
            site,
            pattern,
        }
    }
}

/// The granularity at which provenance accuracy is evaluated (§4.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Granularity {
    /// *(Extractor, URL)* — the basic adaptation of §4.1.
    #[default]
    ExtractorPage,
    /// *(Extractor, Site)* — coarser source dimension.
    ExtractorSite,
    /// *(Extractor, Site, Predicate)*.
    ExtractorSitePredicate,
    /// *(Extractor, Site, Predicate, Pattern)* — the best setting in Fig. 10.
    ExtractorSitePredicatePattern,
    /// Extractor pattern only (Fig. 9 "Only ext"): ignores the source.
    ExtractorPatternOnly,
    /// URL only (Fig. 9 "Only src"): ignores the extractor.
    PageOnly,
}

impl Granularity {
    /// All granularities, in the order plotted by the paper.
    pub const ALL: [Granularity; 6] = [
        Granularity::ExtractorPage,
        Granularity::ExtractorSite,
        Granularity::ExtractorSitePredicate,
        Granularity::ExtractorSitePredicatePattern,
        Granularity::ExtractorPatternOnly,
        Granularity::PageOnly,
    ];

    /// Human-readable label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Granularity::ExtractorPage => "(Extractor, URL)",
            Granularity::ExtractorSite => "(Extractor, Site)",
            Granularity::ExtractorSitePredicate => "(Extractor, Site, Predicate)",
            Granularity::ExtractorSitePredicatePattern => "(Extractor, Site, Predicate, Pattern)",
            Granularity::ExtractorPatternOnly => "Only extractor (pattern)",
            Granularity::PageOnly => "Only source (URL)",
        }
    }
}

/// A provenance projected onto a [`Granularity`]: the unit whose accuracy
/// the fusion algorithms estimate. Fields not included in the granularity
/// are `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProvenanceKey {
    /// Extractor dimension, when included.
    pub extractor: Option<ExtractorId>,
    /// Page dimension, when included.
    pub page: Option<PageId>,
    /// Site dimension, when included.
    pub site: Option<SiteId>,
    /// Predicate dimension, when included.
    pub predicate: Option<PredicateId>,
    /// Pattern dimension, when included.
    pub pattern: Option<PatternId>,
}

/// Manual `Hash`: the derived impl hashes five `Option` discriminants and
/// payloads as ~10 separate hasher writes, and grouping hashes one key per
/// extraction record, so this is on the fusion hot path. The five fields
/// pack losslessly into two `u64` words plus one trailing `u32` (a 5-bit
/// presence mask disambiguates absent fields from raw value 0), cutting
/// the per-key hashing cost to three writes. Equal keys produce equal
/// words, which is all `Hash` correctness requires.
impl Hash for ProvenanceKey {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        let mask = (self.extractor.is_some() as u64)
            | (self.page.is_some() as u64) << 1
            | (self.site.is_some() as u64) << 2
            | (self.predicate.is_some() as u64) << 3
            | (self.pattern.is_some() as u64) << 4;
        // Bits: mask 0..5, extractor 8..24, pattern 24..56.
        let w1 = mask
            | self.extractor.map_or(0, |e| e.raw() as u64) << 8
            | self.pattern.map_or(0, |p| p.raw() as u64) << 24;
        // Bits: page 0..32, site 32..64.
        let w2 =
            self.page.map_or(0, |p| p.raw() as u64) | self.site.map_or(0, |s| s.raw() as u64) << 32;
        state.write_u64(w1);
        state.write_u64(w2);
        state.write_u32(self.predicate.map_or(0, |p| p.raw()));
    }
}

impl ProvenanceKey {
    /// Project `prov` (for a triple with predicate `predicate`) onto
    /// granularity `g`.
    pub fn at(g: Granularity, prov: &Provenance, predicate: PredicateId) -> Self {
        let mut key = ProvenanceKey {
            extractor: None,
            page: None,
            site: None,
            predicate: None,
            pattern: None,
        };
        match g {
            Granularity::ExtractorPage => {
                key.extractor = Some(prov.extractor);
                key.page = Some(prov.page);
            }
            Granularity::ExtractorSite => {
                key.extractor = Some(prov.extractor);
                key.site = Some(prov.site);
            }
            Granularity::ExtractorSitePredicate => {
                key.extractor = Some(prov.extractor);
                key.site = Some(prov.site);
                key.predicate = Some(predicate);
            }
            Granularity::ExtractorSitePredicatePattern => {
                key.extractor = Some(prov.extractor);
                key.site = Some(prov.site);
                key.predicate = Some(predicate);
                key.pattern = Some(prov.pattern);
            }
            Granularity::ExtractorPatternOnly => {
                key.extractor = Some(prov.extractor);
                key.pattern = Some(prov.pattern);
            }
            Granularity::PageOnly => {
                key.page = Some(prov.page);
            }
        }
        key
    }

    /// Stable 64-bit mixing of the key for partitioning decisions.
    pub fn encode(&self) -> u64 {
        crate::hash::hash_one(self)
    }

    /// Pack the key losslessly into one `u128` word — the shuffle
    /// representation used by single-pass grouping, where the key rides
    /// along with every observation.
    ///
    /// Layout (most significant first): extractor `112..128`,
    /// page-or-site `80..112`, predicate `48..80`, pattern `16..48`,
    /// presence mask `0..5`. Page and site share a bit range because no
    /// [`Granularity`] includes both; the mask keeps the packing injective
    /// anyway. Among keys of one granularity (equal masks), `u128`
    /// ordering equals the key's derived lexicographic ordering, so a
    /// sorted run of packed keys unpacks into a sorted run of keys.
    #[inline]
    pub fn pack(&self) -> u128 {
        // A hard assert, not debug-only: the fields are public, and a
        // hand-built key with both set would otherwise pack into a
        // silently different key (the ORed bit range) in release builds.
        assert!(
            self.page.is_none() || self.site.is_none(),
            "page and site share a bit range; no granularity sets both"
        );
        let mask = (self.extractor.is_some() as u128)
            | (self.page.is_some() as u128) << 1
            | (self.site.is_some() as u128) << 2
            | (self.predicate.is_some() as u128) << 3
            | (self.pattern.is_some() as u128) << 4;
        (self.extractor.map_or(0, |e| e.raw() as u128)) << 112
            | (self.page.map_or(0, |p| p.raw() as u128) | self.site.map_or(0, |s| s.raw() as u128))
                << 80
            | (self.predicate.map_or(0, |p| p.raw() as u128)) << 48
            | (self.pattern.map_or(0, |p| p.raw() as u128)) << 16
            | mask
    }

    /// Inverse of [`ProvenanceKey::pack`].
    #[inline]
    pub fn unpack(packed: u128) -> ProvenanceKey {
        let shared = (packed >> 80) as u32;
        ProvenanceKey {
            extractor: (packed & 1 != 0).then_some(ExtractorId((packed >> 112) as u16)),
            page: (packed & 2 != 0).then_some(PageId(shared)),
            site: (packed & 4 != 0).then_some(SiteId(shared)),
            predicate: (packed & 8 != 0).then_some(PredicateId((packed >> 48) as u32)),
            pattern: (packed & 16 != 0).then_some(PatternId((packed >> 16) as u32)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prov() -> Provenance {
        Provenance::new(ExtractorId(3), PageId(100), SiteId(7), PatternId(42))
    }

    #[test]
    fn extractor_page_key_ignores_site_and_pattern() {
        let k = ProvenanceKey::at(Granularity::ExtractorPage, &prov(), PredicateId(5));
        assert_eq!(k.extractor, Some(ExtractorId(3)));
        assert_eq!(k.page, Some(PageId(100)));
        assert_eq!(k.site, None);
        assert_eq!(k.predicate, None);
        assert_eq!(k.pattern, None);
    }

    #[test]
    fn finest_granularity_keeps_four_dimensions() {
        let k = ProvenanceKey::at(
            Granularity::ExtractorSitePredicatePattern,
            &prov(),
            PredicateId(5),
        );
        assert_eq!(k.extractor, Some(ExtractorId(3)));
        assert_eq!(k.page, None);
        assert_eq!(k.site, Some(SiteId(7)));
        assert_eq!(k.predicate, Some(PredicateId(5)));
        assert_eq!(k.pattern, Some(PatternId(42)));
    }

    #[test]
    fn page_only_drops_the_extractor() {
        let k = ProvenanceKey::at(Granularity::PageOnly, &prov(), PredicateId(5));
        assert_eq!(k.extractor, None);
        assert_eq!(k.page, Some(PageId(100)));
    }

    #[test]
    fn extractor_pattern_only_drops_the_source() {
        let k = ProvenanceKey::at(Granularity::ExtractorPatternOnly, &prov(), PredicateId(5));
        assert_eq!(k.extractor, Some(ExtractorId(3)));
        assert_eq!(k.pattern, Some(PatternId(42)));
        assert_eq!(k.page, None);
        assert_eq!(k.site, None);
    }

    #[test]
    fn same_site_pages_collapse_at_site_granularity() {
        let p1 = Provenance::new(ExtractorId(1), PageId(10), SiteId(7), PatternId::NONE);
        let p2 = Provenance::new(ExtractorId(1), PageId(11), SiteId(7), PatternId::NONE);
        let k1 = ProvenanceKey::at(Granularity::ExtractorSite, &p1, PredicateId(0));
        let k2 = ProvenanceKey::at(Granularity::ExtractorSite, &p2, PredicateId(0));
        assert_eq!(k1, k2);
        let k1p = ProvenanceKey::at(Granularity::ExtractorPage, &p1, PredicateId(0));
        let k2p = ProvenanceKey::at(Granularity::ExtractorPage, &p2, PredicateId(0));
        assert_ne!(k1p, k2p);
    }

    #[test]
    fn all_granularities_have_distinct_labels() {
        let labels: std::collections::HashSet<_> =
            Granularity::ALL.iter().map(|g| g.label()).collect();
        assert_eq!(labels.len(), Granularity::ALL.len());
    }

    #[test]
    fn packed_hash_matches_equality() {
        // Equal keys must hash equal; keys differing in exactly one field
        // (or only in field *presence*) must almost surely differ.
        use crate::hash::hash_one;
        let p = prov();
        for g in Granularity::ALL {
            let a = ProvenanceKey::at(g, &p, PredicateId(5));
            let b = ProvenanceKey::at(g, &p, PredicateId(5));
            assert_eq!(hash_one(&a), hash_one(&b));
        }
        // Presence vs raw-zero: {extractor: Some(0)} ≠ {} even though the
        // absent field also packs as 0 — the mask bit separates them.
        let some_zero = ProvenanceKey {
            extractor: Some(ExtractorId(0)),
            page: None,
            site: None,
            predicate: None,
            pattern: None,
        };
        let empty = ProvenanceKey {
            extractor: None,
            page: None,
            site: None,
            predicate: None,
            pattern: None,
        };
        assert_ne!(hash_one(&some_zero), hash_one(&empty));
        // Same raw value in different fields occupies different bit ranges.
        let page5 = ProvenanceKey {
            page: Some(PageId(5)),
            ..empty
        };
        let site5 = ProvenanceKey {
            site: Some(SiteId(5)),
            ..empty
        };
        assert_ne!(hash_one(&page5), hash_one(&site5));
    }

    #[test]
    fn encode_differs_across_granularities() {
        let p = prov();
        let a = ProvenanceKey::at(Granularity::ExtractorPage, &p, PredicateId(5)).encode();
        let b = ProvenanceKey::at(Granularity::ExtractorSite, &p, PredicateId(5)).encode();
        assert_ne!(a, b);
    }

    #[test]
    fn pack_roundtrips_at_every_granularity() {
        let p = prov();
        for g in Granularity::ALL {
            let key = ProvenanceKey::at(g, &p, PredicateId(5));
            assert_eq!(ProvenanceKey::unpack(key.pack()), key, "granularity {g:?}");
        }
        // Distinct granularity projections pack to distinct words (the
        // presence mask disambiguates shared bit ranges).
        let mut packed: Vec<u128> = Granularity::ALL
            .iter()
            .map(|&g| ProvenanceKey::at(g, &p, PredicateId(5)).pack())
            .collect();
        packed.sort_unstable();
        packed.dedup();
        assert_eq!(packed.len(), Granularity::ALL.len());
    }

    #[test]
    fn packed_order_matches_key_order_within_granularity() {
        // Sorting packed words must sort the keys identically — single-pass
        // grouping relies on this for dense sorted provenance ids.
        let mut provs = Vec::new();
        for e in [0u16, 1, 9] {
            for page in [0u32, 7, 1_000_000] {
                for pattern in [0u32, 3, u32::MAX] {
                    provs.push(Provenance::new(
                        ExtractorId(e),
                        PageId(page),
                        SiteId(page / 10),
                        PatternId(pattern),
                    ));
                }
            }
        }
        for g in Granularity::ALL {
            let mut keys: Vec<ProvenanceKey> = provs
                .iter()
                .map(|p| ProvenanceKey::at(g, p, PredicateId(2)))
                .collect();
            keys.sort_unstable();
            keys.dedup();
            let mut packed: Vec<u128> = keys.iter().map(|k| k.pack()).collect();
            packed.sort_unstable();
            let unpacked: Vec<ProvenanceKey> =
                packed.iter().map(|&w| ProvenanceKey::unpack(w)).collect();
            assert_eq!(unpacked, keys, "granularity {g:?}");
        }
    }
}
