//! Compact newtype identifiers.
//!
//! Every noun in the system — entity, predicate, type, web page, web site,
//! extractor, extraction pattern, interned string — is referred to by a
//! small `Copy` integer id. Ids are dense (allocated 0..n by the catalogs
//! and generators), so they double as indices into side tables.

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $repr:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub $repr);

        impl $name {
            /// Construct from a dense index.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(index as $repr)
            }

            /// The dense index this id was allocated at.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Raw integer value.
            #[inline]
            pub fn raw(self) -> $repr {
                self.0
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(index: usize) -> Self {
                Self::from_index(index)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// A Freebase-style entity (e.g. `/m/07r1h` for Tom Cruise).
    EntityId,
    u32
);
id_type!(
    /// A predicate from the KB schema (e.g. `people/person/birth_date`).
    PredicateId,
    u32
);
id_type!(
    /// An entity type in the shallow two-level hierarchy (e.g. `people/person`).
    TypeId,
    u32
);
id_type!(
    /// A single web page (URL). The paper's finest source granularity.
    PageId,
    u32
);
id_type!(
    /// A web site: the URL prefix up to the first `/` (e.g. `en.wikipedia.org`).
    SiteId,
    u32
);
id_type!(
    /// One of the information extractors (the paper uses 12).
    ExtractorId,
    u16
);
id_type!(
    /// A learned extraction pattern / template within an extractor.
    PatternId,
    u32
);
id_type!(
    /// An interned string.
    StrId,
    u32
);

impl PatternId {
    /// Sentinel for extractors that do not use patterns (Table 2: "No pat.").
    pub const NONE: PatternId = PatternId(u32::MAX);

    /// True if this is the no-pattern sentinel.
    #[inline]
    pub fn is_none(self) -> bool {
        self == Self::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let e = EntityId::from_index(17);
        assert_eq!(e.index(), 17);
        assert_eq!(e.raw(), 17);
        assert_eq!(EntityId::from(17usize), e);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(PredicateId(3) < PredicateId(9));
        assert!(PageId(100) > PageId(99));
    }

    #[test]
    fn pattern_sentinel() {
        assert!(PatternId::NONE.is_none());
        assert!(!PatternId(0).is_none());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(EntityId(5).to_string(), "EntityId(5)");
        assert_eq!(ExtractorId(2).to_string(), "ExtractorId(2)");
    }

    #[test]
    fn ids_are_usable_as_map_keys() {
        use crate::hash::FxHashMap;
        let mut m: FxHashMap<EntityId, u32> = FxHashMap::default();
        m.insert(EntityId(1), 10);
        m.insert(EntityId(2), 20);
        assert_eq!(m[&EntityId(2)], 20);
    }
}
