//! Extraction records: the raw input of knowledge fusion.

use crate::provenance::Provenance;
use crate::triple::Triple;
use serde::{Deserialize, Serialize};

/// One extracted `(triple, provenance)` observation, optionally carrying the
/// extractor-assigned confidence (§3.1.1: 99.5% of extracted triples have
/// one; §5.5 discusses how confidences differ in shape across extractors).
///
/// The corpus is a bag of these: the same triple typically appears many
/// times with different provenances, and the same provenance contributes
/// many triples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Extraction {
    /// The extracted knowledge triple.
    pub triple: Triple,
    /// Where it came from.
    pub provenance: Provenance,
    /// Extractor-assigned confidence in `[0, 1]`, if the extractor provides
    /// one. **Not** calibrated — see Fig. 21.
    pub confidence: Option<f32>,
}

impl Extraction {
    /// Construct an extraction without a confidence score.
    pub fn new(triple: Triple, provenance: Provenance) -> Self {
        Extraction {
            triple,
            provenance,
            confidence: None,
        }
    }

    /// Construct an extraction with a confidence score.
    pub fn with_confidence(triple: Triple, provenance: Provenance, confidence: f32) -> Self {
        Extraction {
            triple,
            provenance,
            confidence: Some(confidence),
        }
    }
}

/// A batch of extractions, the unit handed to the fusion pipeline.
///
/// Thin wrapper over `Vec<Extraction>` with corpus-level convenience
/// accessors used by tests, examples and the statistics module.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExtractionBatch {
    /// The extraction records.
    pub records: Vec<Extraction>,
}

impl ExtractionBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an existing vector of records.
    pub fn from_records(records: Vec<Extraction>) -> Self {
        ExtractionBatch { records }
    }

    /// Append a record.
    pub fn push(&mut self, e: Extraction) {
        self.records.push(e);
    }

    /// Number of extraction records (with duplicates — the paper's "6.4B
    /// extracted triples" axis).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate over records.
    pub fn iter(&self) -> std::slice::Iter<'_, Extraction> {
        self.records.iter()
    }

    /// Number of *unique* triples (the paper's "1.6B unique triples" axis).
    pub fn unique_triples(&self) -> usize {
        let mut set: crate::FxHashSet<Triple> = crate::FxHashSet::default();
        set.reserve(self.records.len());
        for e in &self.records {
            set.insert(e.triple);
        }
        set.len()
    }

    /// Number of unique data items.
    pub fn unique_data_items(&self) -> usize {
        let mut set: crate::FxHashSet<crate::DataItem> = crate::FxHashSet::default();
        set.reserve(self.records.len());
        for e in &self.records {
            set.insert(e.triple.data_item());
        }
        set.len()
    }
}

impl<'a> IntoIterator for &'a ExtractionBatch {
    type Item = &'a Extraction;
    type IntoIter = std::slice::Iter<'a, Extraction>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl IntoIterator for ExtractionBatch {
    type Item = Extraction;
    type IntoIter = std::vec::IntoIter<Extraction>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

impl FromIterator<Extraction> for ExtractionBatch {
    fn from_iter<I: IntoIterator<Item = Extraction>>(iter: I) -> Self {
        ExtractionBatch {
            records: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::*;
    use crate::value::Value;

    fn ex(s: u32, p: u32, o: u32, page: u32) -> Extraction {
        Extraction::new(
            Triple::new(EntityId(s), PredicateId(p), Value::Entity(EntityId(o))),
            Provenance::new(ExtractorId(0), PageId(page), SiteId(0), PatternId::NONE),
        )
    }

    #[test]
    fn unique_counts_dedupe() {
        let batch = ExtractionBatch::from_records(vec![
            ex(1, 1, 1, 1),
            ex(1, 1, 1, 2), // same triple, different page
            ex(1, 1, 2, 1), // same item, different object
            ex(2, 1, 1, 1), // different item
        ]);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.unique_triples(), 3);
        assert_eq!(batch.unique_data_items(), 2);
    }

    #[test]
    fn empty_batch() {
        let batch = ExtractionBatch::new();
        assert!(batch.is_empty());
        assert_eq!(batch.unique_triples(), 0);
        assert_eq!(batch.unique_data_items(), 0);
    }

    #[test]
    fn confidence_is_optional() {
        let t = ex(1, 1, 1, 1).triple;
        let p = ex(1, 1, 1, 1).provenance;
        assert_eq!(Extraction::new(t, p).confidence, None);
        assert_eq!(Extraction::with_confidence(t, p, 0.7).confidence, Some(0.7));
    }

    #[test]
    fn from_iterator_collects() {
        let batch: ExtractionBatch = (0..5).map(|i| ex(i, 0, 0, i)).collect();
        assert_eq!(batch.len(), 5);
        assert_eq!(batch.unique_data_items(), 5);
    }
}
