//! Checkpoint container: a versioned, magic-tagged envelope over
//! [`KvCodec`] payloads, plus the atomic write-then-rename helper every
//! on-disk artifact in the workspace goes through.
//!
//! The spill-file codec ([`crate::codec`]) deliberately carries no
//! self-description: run files are written and read by the same process,
//! so the schema is the Rust type itself. Checkpoints are different —
//! a corpus snapshot or a shard report is written by one process and
//! read by another (possibly a later build), so each checkpoint file
//! starts with a fixed header:
//!
//! ```text
//! checkpoint := magic(4 = "KFCP")  version(u16 LE)  kind(u8)  payload
//! payload    := KvCodec encoding of the artifact, to end of file
//! ```
//!
//! * **Magic** rejects arbitrary files immediately ([`CheckpointError::BadMagic`]).
//! * **Version** is the format version of the *payload encodings*. Any
//!   change to an existing `KvCodec` impl that can appear in a checkpoint
//!   (field added, reordered, retagged) must bump [`FORMAT_VERSION`]; a
//!   mismatch is a hard [`CheckpointError::VersionSkew`] error, never a
//!   silent misparse. Adding a *new* artifact kind does not bump it.
//! * **Kind** names the artifact ([`ArtifactKind`]) so a corpus checkpoint
//!   handed to a report loader fails with [`CheckpointError::WrongKind`]
//!   instead of decode garbage.
//!
//! Writers must produce *canonical* bytes: encoding the same logical
//! value twice — even from different processes — yields identical files.
//! Hash-map-backed types therefore encode their entries in sorted key
//! order (see [`crate::codec::encode_map_sorted`]); CI byte-diffs two
//! independently generated same-seed corpus checkpoints to enforce this.
//!
//! [`write_atomic`] writes through a same-directory temp file and renames
//! it into place, so a killed process can never leave a truncated file
//! that parses — the destination either has the old content or the whole
//! new content. Both the checkpoint writer here and the MapReduce spill
//! writer (`kf-mapreduce`) go through it.

use crate::codec::KvCodec;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// First four bytes of every checkpoint file.
pub const MAGIC: [u8; 4] = *b"KFCP";

/// Version of the payload encodings. Bump on any incompatible change to
/// a `KvCodec` impl reachable from a checkpointed artifact. Version 2:
/// `MethodEval` gained a trailing optional `kf-telemetry` trace.
/// Version 3: the `FusedKb` serving artifact joined the format — bumped
/// (despite being a purely additive kind) so every serving-era artifact
/// self-identifies and a pre-serving build rejects a KB file with a
/// version error rather than an unknown-kind one.
/// Version 4: hostile-corpus scenarios — `Corpus` gained a trailing
/// `ScenarioTruth` segment (injected copying/spam/drift/linkage ground
/// truth) and `TaxonomyReport` a `scenarios` breakdown, so corpora and
/// reports from scenario-aware builds reject cleanly on older readers.
/// Version 5: live metrics — `TraceReport` gained histogram and gauge
/// sections, changing the bytes of every checkpointed trace (traces
/// ride inside shard reports).
/// Version 6: distributed execution — `HistKind` gained the fully
/// quarantined `Traffic` variant for wire-traffic histograms whose
/// message *counts* depend on heartbeat scheduling; histogram kinds
/// ride inside checkpointed traces, so older readers must reject.
pub const FORMAT_VERSION: u16 = 6;

/// What a checkpoint file contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ArtifactKind {
    /// A `kf-synth` ground-truth world.
    World = 1,
    /// A full `kf-synth` corpus (world + web + gold + extractions +
    /// injected-outcome truth).
    Corpus = 2,
    /// A `kf-eval` evaluation report (full or one shard's slice).
    Report = 3,
    /// A `kf-serve` fused knowledge base: read-optimized columnar indexes
    /// compiled from an evaluation report + corpus snapshot.
    FusedKb = 4,
}

impl ArtifactKind {
    /// Stable name used in error messages and file listings.
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::World => "world",
            ArtifactKind::Corpus => "corpus",
            ArtifactKind::Report => "report",
            ArtifactKind::FusedKb => "fused-kb",
        }
    }

    /// Inverse of the header tag; `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<ArtifactKind> {
        match tag {
            1 => Some(ArtifactKind::World),
            2 => Some(ArtifactKind::Corpus),
            3 => Some(ArtifactKind::Report),
            4 => Some(ArtifactKind::FusedKb),
            _ => None,
        }
    }
}

/// Why a checkpoint could not be read (or written).
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying file operation failed.
    Io(io::Error),
    /// The file does not start with [`MAGIC`] — not a checkpoint at all.
    BadMagic,
    /// The file was written under a different [`FORMAT_VERSION`].
    VersionSkew {
        /// Version found in the file header.
        found: u16,
    },
    /// The file holds a different artifact than the caller asked for.
    WrongKind {
        /// Kind tag found in the file header (possibly unknown).
        found: u8,
        /// Kind the caller expected.
        expected: ArtifactKind,
    },
    /// The header parsed but the payload is truncated or malformed.
    Corrupt,
    /// The payload decoded but bytes remain — a length mismatch between
    /// writer and reader, treated as corruption rather than ignored.
    TrailingBytes,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => f.write_str("not a checkpoint file (bad magic)"),
            CheckpointError::VersionSkew { found } => write!(
                f,
                "checkpoint format version {found} (this build reads {FORMAT_VERSION}); \
                 regenerate the checkpoint"
            ),
            CheckpointError::WrongKind { found, expected } => {
                let found = ArtifactKind::from_tag(*found)
                    .map(ArtifactKind::name)
                    .unwrap_or("unknown");
                write!(
                    f,
                    "checkpoint holds a {found} artifact, expected {}",
                    expected.name()
                )
            }
            CheckpointError::Corrupt => f.write_str("checkpoint payload is truncated or corrupt"),
            CheckpointError::TrailingBytes => {
                f.write_str("checkpoint payload has trailing bytes after decode")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Encode `value` into a headered checkpoint byte buffer.
pub fn encode<T: KvCodec>(kind: ArtifactKind, value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(kind as u8);
    value.encode(&mut out);
    out
}

/// Decode a headered checkpoint buffer, verifying magic, version and
/// kind, and requiring the payload to consume every remaining byte.
pub fn decode<T: KvCodec>(kind: ArtifactKind, bytes: &[u8]) -> Result<T, CheckpointError> {
    let mut input = bytes;
    let header = |input: &mut &[u8], n: usize| -> Result<Vec<u8>, CheckpointError> {
        if input.len() < n {
            return Err(CheckpointError::BadMagic);
        }
        let (head, tail) = input.split_at(n);
        *input = tail;
        Ok(head.to_vec())
    };
    if header(&mut input, 4)? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u16::from_le_bytes(header(&mut input, 2)?.try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(CheckpointError::VersionSkew { found: version });
    }
    let tag = header(&mut input, 1)?[0];
    if ArtifactKind::from_tag(tag) != Some(kind) {
        return Err(CheckpointError::WrongKind {
            found: tag,
            expected: kind,
        });
    }
    let value = T::decode(&mut input).ok_or(CheckpointError::Corrupt)?;
    if !input.is_empty() {
        return Err(CheckpointError::TrailingBytes);
    }
    Ok(value)
}

/// Encode `value` and atomically write the checkpoint file at `path`.
pub fn save<T: KvCodec>(path: &Path, kind: ArtifactKind, value: &T) -> Result<(), CheckpointError> {
    let bytes = encode(kind, value);
    write_atomic(path, |w| w.write_all(&bytes))?;
    Ok(())
}

/// Read and decode the checkpoint file at `path`.
pub fn load<T: KvCodec>(path: &Path, kind: ArtifactKind) -> Result<T, CheckpointError> {
    let bytes = std::fs::read(path)?;
    decode(kind, &bytes)
}

/// Write a file atomically: stream through a buffered same-directory
/// temp file, then rename it over `path`.
///
/// The rename is the commit point — readers (and a process killed at any
/// earlier moment) see either the previous content of `path` or the
/// complete new content, never a truncated prefix that happens to parse.
/// The temp name embeds the process id and a process-global sequence
/// number, so concurrent writers to different destinations in one
/// directory never collide; on any error the temp file is removed.
pub fn write_atomic<R>(
    path: &Path,
    f: impl FnOnce(&mut BufWriter<File>) -> io::Result<R>,
) -> io::Result<R> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = path.with_file_name(format!(
        ".{}.tmp-{}-{}",
        file_name.to_string_lossy(),
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let attempt = (|| {
        let mut writer = BufWriter::new(File::create(&tmp)?);
        let result = f(&mut writer)?;
        writer.flush()?;
        std::fs::rename(&tmp, path)?;
        Ok(result)
    })();
    if attempt.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    attempt
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("kf-checkpoint-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn headered_roundtrip() {
        let value = (42u64, String::from("tom cruise"), vec![1.5f64, -0.0]);
        let bytes = encode(ArtifactKind::Corpus, &value);
        assert_eq!(&bytes[..4], &MAGIC);
        let back: (u64, String, Vec<f64>) = decode(ArtifactKind::Corpus, &bytes).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode(ArtifactKind::Corpus, &7u32);
        bytes[0] = b'X';
        assert!(matches!(
            decode::<u32>(ArtifactKind::Corpus, &bytes),
            Err(CheckpointError::BadMagic)
        ));
        // Too short to even hold the header.
        assert!(matches!(
            decode::<u32>(ArtifactKind::Corpus, b"KF"),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn version_skew_is_a_hard_error() {
        let mut bytes = encode(ArtifactKind::Report, &7u32);
        let skewed = (FORMAT_VERSION + 1).to_le_bytes();
        bytes[4..6].copy_from_slice(&skewed);
        match decode::<u32>(ArtifactKind::Report, &bytes) {
            Err(CheckpointError::VersionSkew { found }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
            }
            other => panic!("expected version skew, got {other:?}"),
        }
    }

    #[test]
    fn wrong_kind_is_rejected_with_both_names() {
        let bytes = encode(ArtifactKind::Corpus, &7u32);
        match decode::<u32>(ArtifactKind::Report, &bytes) {
            Err(e @ CheckpointError::WrongKind { .. }) => {
                let msg = e.to_string();
                assert!(msg.contains("corpus") && msg.contains("report"), "{msg}");
            }
            other => panic!("expected wrong kind, got {other:?}"),
        }
        // Unknown tags also surface as WrongKind, not a panic.
        let mut bytes = bytes;
        bytes[6] = 200;
        assert!(matches!(
            decode::<u32>(ArtifactKind::Corpus, &bytes),
            Err(CheckpointError::WrongKind { found: 200, .. })
        ));
    }

    #[test]
    fn fused_kb_kind_roundtrips() {
        assert_eq!(ArtifactKind::from_tag(4), Some(ArtifactKind::FusedKb));
        assert_eq!(ArtifactKind::FusedKb.name(), "fused-kb");
        let bytes = encode(ArtifactKind::FusedKb, &7u32);
        assert_eq!(decode::<u32>(ArtifactKind::FusedKb, &bytes).unwrap(), 7);
        // A KB checkpoint handed to a corpus loader names both kinds.
        match decode::<u32>(ArtifactKind::Corpus, &bytes) {
            Err(e @ CheckpointError::WrongKind { .. }) => {
                let msg = e.to_string();
                assert!(msg.contains("fused-kb") && msg.contains("corpus"), "{msg}");
            }
            other => panic!("expected wrong kind, got {other:?}"),
        }
    }

    #[test]
    fn truncated_payload_is_corrupt_and_trailing_bytes_are_rejected() {
        let bytes = encode(ArtifactKind::World, &(1u64, 2u64));
        for cut in 7..bytes.len() {
            assert!(matches!(
                decode::<(u64, u64)>(ArtifactKind::World, &bytes[..cut]),
                Err(CheckpointError::Corrupt)
            ));
        }
        let mut padded = bytes;
        padded.push(0);
        assert!(matches!(
            decode::<(u64, u64)>(ArtifactKind::World, &padded),
            Err(CheckpointError::TrailingBytes)
        ));
    }

    #[test]
    fn save_load_roundtrip_through_a_file() {
        let path = tmp_path("roundtrip.kfc");
        let value = vec![(1u32, String::from("a")), (2, String::from("b"))];
        save(&path, ArtifactKind::Report, &value).unwrap();
        let back: Vec<(u32, String)> = load(&path, ArtifactKind::Report).unwrap();
        assert_eq!(back, value);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = tmp_path("does-not-exist.kfc");
        assert!(matches!(
            load::<u32>(&path, ArtifactKind::Corpus),
            Err(CheckpointError::Io(_))
        ));
    }

    #[test]
    fn write_atomic_replaces_whole_file_and_cleans_temp() {
        let path = tmp_path("atomic.bin");
        write_atomic(&path, |w| w.write_all(b"first version, long")).unwrap();
        write_atomic(&path, |w| w.write_all(b"second")).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No temp litter next to the destination.
        let dir = path.parent().unwrap();
        let stem = format!(".{}", path.file_name().unwrap().to_string_lossy());
        let litter = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(&stem))
            .count();
        assert_eq!(litter, 0, "temp files left behind");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn write_atomic_failure_preserves_old_content() {
        let path = tmp_path("atomic-fail.bin");
        write_atomic(&path, |w| w.write_all(b"intact")).unwrap();
        let result = write_atomic(&path, |w| {
            w.write_all(b"partial garbage ")?;
            Err::<(), _>(io::Error::other("writer failed mid-stream"))
        });
        assert!(result.is_err());
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"intact",
            "failed write must not touch the destination"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn error_display_is_informative() {
        assert!(CheckpointError::BadMagic.to_string().contains("magic"));
        assert!(CheckpointError::Corrupt.to_string().contains("corrupt"));
        assert!(CheckpointError::VersionSkew { found: 9 }
            .to_string()
            .contains('9'));
        let io_err: CheckpointError = io::Error::other("disk on fire").into();
        assert!(io_err.to_string().contains("disk on fire"));
    }
}
