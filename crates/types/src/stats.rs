//! Small statistics helpers shared by the corpus generator and the
//! evaluation suite (Table 1's mean/median/min/max skew rows).

use serde::{Deserialize, Serialize};

/// Summary of a skewed count distribution, in the shape of Table 1's lower
/// half: `#Triples/type  77K  465  1  14M` etc.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkewSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (lower of the two middle elements for even lengths).
    pub median: f64,
    /// Minimum.
    pub min: u64,
    /// Maximum.
    pub max: u64,
    /// Number of observations.
    pub count: usize,
}

impl SkewSummary {
    /// Summarise a slice of counts. Returns `None` for empty input.
    pub fn from_counts(counts: &[u64]) -> Option<Self> {
        if counts.is_empty() {
            return None;
        }
        let mut sorted = counts.to_vec();
        sorted.sort_unstable();
        let sum: u128 = sorted.iter().map(|&c| c as u128).sum();
        Some(SkewSummary {
            mean: sum as f64 / sorted.len() as f64,
            median: sorted[(sorted.len() - 1) / 2] as f64,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            count: sorted.len(),
        })
    }

    /// The paper's "heavy head, long tail" skew indicator: mean much larger
    /// than median.
    pub fn is_right_skewed(&self) -> bool {
        self.mean > self.median
    }
}

/// Render a count like the paper's tables: `1.6B`, `337M`, `4.5K`, `465`.
pub fn human_count(n: f64) -> String {
    let abs = n.abs();
    if abs >= 1e9 {
        format!("{:.1}B", n / 1e9)
    } else if abs >= 1e6 {
        format!("{:.1}M", n / 1e6)
    } else if abs >= 1e3 {
        format!("{:.1}K", n / 1e3)
    } else if (n.fract()).abs() < 1e-9 {
        format!("{}", n as i64)
    } else {
        format!("{n:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_uniform_counts() {
        let s = SkewSummary::from_counts(&[5, 5, 5, 5]).unwrap();
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 5);
        assert!(!s.is_right_skewed());
    }

    #[test]
    fn summary_of_skewed_counts() {
        // Heavy head: one giant, many small — like #triples per entity.
        let s = SkewSummary::from_counts(&[1, 1, 2, 2, 3, 1_000_000]).unwrap();
        assert!(s.is_right_skewed());
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn empty_input_gives_none() {
        assert!(SkewSummary::from_counts(&[]).is_none());
    }

    #[test]
    fn median_for_odd_length() {
        let s = SkewSummary::from_counts(&[9, 1, 5]).unwrap();
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn human_count_formats() {
        assert_eq!(human_count(1.6e9), "1.6B");
        assert_eq!(human_count(337e6), "337.0M");
        assert_eq!(human_count(4_500.0), "4.5K");
        assert_eq!(human_count(465.0), "465");
        assert_eq!(human_count(4.9), "4.9");
    }

    #[test]
    fn summary_does_not_overflow_on_large_counts() {
        let s = SkewSummary::from_counts(&[u64::MAX / 2, u64::MAX / 2]).unwrap();
        assert!(s.mean > 0.0);
    }
}
