//! The gold standard and the local closed-world assumption (LCWA).
//!
//! §3.2.1: a triple `(s, p, o)` is labelled **true** if it occurs in
//! Freebase; **false** if it does not but the data item `(s, p)` does (the
//! *local* closed-world assumption: once Freebase knows a data item, it is
//! assumed locally complete); and **unknown** (excluded from evaluation)
//! when Freebase knows nothing about `(s, p)`.
//!
//! The same structure powers the semi-supervised accuracy initialisation of
//! §4.3.3 and the automated error taxonomy of Fig. 17.

use crate::hash::FxHashMap;
use crate::triple::{DataItem, Triple};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Gold-standard label under LCWA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// Triple occurs in the gold KB.
    True,
    /// Data item occurs, but with different object value(s).
    False,
    /// Data item absent from the gold KB — abstain.
    Unknown,
}

impl Label {
    /// `Some(true/false)` for labelled triples, `None` for unknown.
    #[inline]
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Label::True => Some(true),
            Label::False => Some(false),
            Label::Unknown => None,
        }
    }
}

/// A trusted partial KB (the paper uses Freebase) mapping known data items
/// to their accepted object values.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldStandard {
    items: FxHashMap<DataItem, Vec<Value>>,
    n_triples: usize,
}

/// Checkpoint encoding: columnar `(item, accepted values)` groups in
/// sorted key order, so the bytes are canonical (independent of hash-map
/// history) and decode is a bulk column scan. `n_triples` is recomputed
/// on decode rather than trusted from the file.
impl crate::KvCodec for GoldStandard {
    fn encode(&self, out: &mut Vec<u8>) {
        let mut entries: Vec<(&DataItem, &Vec<Value>)> = self.items.iter().collect();
        entries.sort_by_key(|(item, _)| **item);
        crate::codec::encode_item_values_columns(
            entries.len(),
            entries
                .iter()
                .map(|(item, values)| (**item, values.as_slice())),
            out,
        );
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let groups = crate::codec::decode_item_values_columns(input)?;
        let mut n_triples = 0usize;
        let mut items = FxHashMap::default();
        items.reserve(groups.len());
        for (item, values) in groups {
            n_triples += values.len();
            if items.insert(item, values).is_some() {
                return None;
            }
        }
        Some(GoldStandard { items, n_triples })
    }
}

impl GoldStandard {
    /// An empty gold standard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `value` as an accepted object for `item`. Duplicate inserts
    /// are ignored.
    pub fn insert(&mut self, item: DataItem, value: Value) {
        let values = self.items.entry(item).or_default();
        if !values.contains(&value) {
            values.push(value);
            self.n_triples += 1;
        }
    }

    /// Label a triple under LCWA.
    pub fn label(&self, triple: &Triple) -> Label {
        match self.items.get(&triple.data_item()) {
            None => Label::Unknown,
            Some(values) => {
                if values.contains(&triple.object) {
                    Label::True
                } else {
                    Label::False
                }
            }
        }
    }

    /// Accepted values for a data item (`None` when the item is unknown).
    pub fn values(&self, item: &DataItem) -> Option<&[Value]> {
        self.items.get(item).map(Vec::as_slice)
    }

    /// Whether the gold KB knows anything about `item`.
    pub fn knows(&self, item: &DataItem) -> bool {
        self.items.contains_key(item)
    }

    /// Number of known data items.
    pub fn n_items(&self) -> usize {
        self.items.len()
    }

    /// Number of accepted (item, value) pairs.
    pub fn n_triples(&self) -> usize {
        self.n_triples
    }

    /// Iterate over `(item, accepted values)`.
    pub fn iter(&self) -> impl Iterator<Item = (&DataItem, &[Value])> {
        self.items.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Distribution of the number of accepted values per data item, capped
    /// at `max` (used by Fig. 20).
    pub fn truth_count_histogram(&self, max: usize) -> Vec<usize> {
        let mut hist = vec![0usize; max + 1];
        for values in self.items.values() {
            let n = values.len().min(max);
            hist[n] += 1;
        }
        hist
    }
}

impl FromIterator<(DataItem, Value)> for GoldStandard {
    fn from_iter<I: IntoIterator<Item = (DataItem, Value)>>(iter: I) -> Self {
        let mut gs = GoldStandard::new();
        for (item, value) in iter {
            gs.insert(item, value);
        }
        gs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{EntityId, PredicateId};

    fn item(s: u32, p: u32) -> DataItem {
        DataItem::new(EntityId(s), PredicateId(p))
    }

    fn triple(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(EntityId(s), PredicateId(p), Value::Entity(EntityId(o)))
    }

    #[test]
    fn lcwa_labels() {
        let mut gs = GoldStandard::new();
        gs.insert(item(1, 1), Value::Entity(EntityId(10)));
        // Known item + matching object => True.
        assert_eq!(gs.label(&triple(1, 1, 10)), Label::True);
        // Known item + different object => False (local closed world).
        assert_eq!(gs.label(&triple(1, 1, 11)), Label::False);
        // Unknown item => abstain.
        assert_eq!(gs.label(&triple(2, 1, 10)), Label::Unknown);
    }

    #[test]
    fn multi_truth_items_label_all_accepted_values_true() {
        // Non-functional predicate: a movie with two actors.
        let mut gs = GoldStandard::new();
        gs.insert(item(5, 2), Value::Entity(EntityId(100)));
        gs.insert(item(5, 2), Value::Entity(EntityId(101)));
        assert_eq!(gs.label(&triple(5, 2, 100)), Label::True);
        assert_eq!(gs.label(&triple(5, 2, 101)), Label::True);
        assert_eq!(gs.label(&triple(5, 2, 102)), Label::False);
        assert_eq!(gs.n_items(), 1);
        assert_eq!(gs.n_triples(), 2);
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let mut gs = GoldStandard::new();
        gs.insert(item(1, 1), Value::Entity(EntityId(10)));
        gs.insert(item(1, 1), Value::Entity(EntityId(10)));
        assert_eq!(gs.n_triples(), 1);
    }

    #[test]
    fn label_as_bool() {
        assert_eq!(Label::True.as_bool(), Some(true));
        assert_eq!(Label::False.as_bool(), Some(false));
        assert_eq!(Label::Unknown.as_bool(), None);
    }

    #[test]
    fn truth_histogram_caps_at_max() {
        let mut gs = GoldStandard::new();
        for o in 0..7 {
            gs.insert(item(1, 1), Value::Entity(EntityId(o)));
        }
        gs.insert(item(2, 1), Value::Entity(EntityId(0)));
        let hist = gs.truth_count_histogram(5);
        assert_eq!(hist[1], 1); // item(2,1) has one truth
        assert_eq!(hist[5], 1); // item(1,1) capped from 7 to 5
        assert_eq!(hist.iter().sum::<usize>(), 2);
    }

    #[test]
    fn kvcodec_roundtrip_restores_labels_and_counts() {
        use crate::KvCodec;
        let mut gs = GoldStandard::new();
        gs.insert(item(1, 1), Value::Entity(EntityId(10)));
        gs.insert(item(1, 1), Value::Entity(EntityId(11)));
        gs.insert(item(2, 3), Value::Entity(EntityId(9)));
        let mut buf = Vec::new();
        gs.encode(&mut buf);
        let mut input = &buf[..];
        let back = GoldStandard::decode(&mut input).unwrap();
        assert!(input.is_empty());
        assert_eq!(back, gs);
        assert_eq!(back.n_triples(), 3);
        assert_eq!(back.label(&triple(1, 1, 11)), Label::True);
        assert_eq!(back.label(&triple(1, 1, 12)), Label::False);
        // Truncations never parse.
        for cut in 0..buf.len() {
            assert_eq!(GoldStandard::decode(&mut &buf[..cut]), None);
        }
    }

    #[test]
    fn from_iterator_builds_gold() {
        let gs: GoldStandard = vec![
            (item(1, 1), Value::Entity(EntityId(1))),
            (item(1, 2), Value::Entity(EntityId(2))),
        ]
        .into_iter()
        .collect();
        assert_eq!(gs.n_items(), 2);
        assert!(gs.knows(&item(1, 2)));
        assert!(!gs.knows(&item(9, 9)));
    }
}
