//! Wire protocol for the distributed coordinator/worker runtime.
//!
//! `kf-dist` ships corpus checkpoints and shard reports between
//! processes over TCP. The wire format deliberately reuses the
//! [`KvCodec`] encodings everything already persists through: a message
//! is a length-prefixed frame whose payload is the `KvCodec` encoding
//! of one [`WireMsg`], and the *artifact-bearing* messages
//! ([`WireMsg::Corpus`], [`WireMsg::TaskDone`]) carry whole
//! [`crate::checkpoint`] files verbatim — magic, version header and
//! all — so a shipped corpus is bit-for-bit the file `--save-corpus`
//! would have written, and every end validates it with the same
//! checkpoint machinery.
//!
//! ```text
//! frame   := len(u32 LE)  payload(len bytes)
//! payload := KvCodec encoding of one WireMsg (tagged enum)
//! ```
//!
//! # Versioned handshake
//!
//! The first frame on every connection is [`WireMsg::Hello`], carrying
//! both [`PROTOCOL_VERSION`] (the message vocabulary of this module)
//! and [`crate::checkpoint::FORMAT_VERSION`] (the payload encodings of
//! the artifacts that will ride inside). The coordinator answers
//! [`WireMsg::Welcome`] only when **both** match its own; any skew gets
//! a [`WireMsg::Reject`] naming the mismatch, so a stale worker build
//! fails loudly at registration instead of corrupting a merge.
//!
//! # Robustness
//!
//! [`read_frame`] rejects frames whose declared length exceeds
//! [`MAX_FRAME_BYTES`] *before* allocating, payloads that do not decode,
//! and payloads with trailing bytes after the message — a
//! length-vs-content mismatch is treated as corruption, mirroring the
//! checkpoint container's `TrailingBytes` rule.

use crate::codec::KvCodec;
use std::io::{self, Read, Write};

/// Version of the message vocabulary in this module. Bump on any change
/// to [`WireMsg`] or [`TaskSpec`] encodings (variant added, field added
/// or reordered, retagged); the handshake turns a mismatch into a
/// [`WireMsg::Reject`] rather than a misparse.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a single frame's payload (1 GiB). A corpus checkpoint
/// at the paper scale is ~tens of MiB; anything near this bound is a
/// corrupted length prefix, not data, and is rejected before the
/// allocation it would imply.
pub const MAX_FRAME_BYTES: usize = 1 << 30;

/// One dispatchable slice of a distributed reproduction run: the preset
/// shard a worker fuses, plus every option that affects the bytes of
/// its shard report. The coordinator derives these from its own CLI
/// options so all workers run under identical evaluation settings —
/// the precondition for the byte-identical merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// Coordinator-assigned id, echoed in [`WireMsg::TaskDone`] /
    /// [`WireMsg::TaskFailed`]; the duplicate-completion ledger is
    /// keyed by it.
    pub task_id: u32,
    /// Which shard of the round-robin split this task is.
    pub shard_index: u32,
    /// Total shards in the split.
    pub shard_count: u32,
    /// Preset names this shard fuses (resolved by the worker).
    pub presets: Vec<String>,
    /// Corpus scale label recorded in the report header.
    pub scale: String,
    /// Calibration bins per curve.
    pub bins: u64,
    /// Fusion worker threads (0 = the library default).
    pub workers: u64,
    /// Run the error-taxonomy diagnosis pass.
    pub diagnose: bool,
    /// Quarantine every wall-clock field in the shard report.
    pub deterministic: bool,
}

impl KvCodec for TaskSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.task_id.encode(out);
        self.shard_index.encode(out);
        self.shard_count.encode(out);
        self.presets.encode(out);
        self.scale.encode(out);
        self.bins.encode(out);
        self.workers.encode(out);
        self.diagnose.encode(out);
        self.deterministic.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(TaskSpec {
            task_id: u32::decode(input)?,
            shard_index: u32::decode(input)?,
            shard_count: u32::decode(input)?,
            presets: Vec::decode(input)?,
            scale: String::decode(input)?,
            bins: u64::decode(input)?,
            workers: u64::decode(input)?,
            diagnose: bool::decode(input)?,
            deterministic: bool::decode(input)?,
        })
    }
}

/// Every message the coordinator/worker protocol exchanges.
///
/// Registration: worker sends [`Hello`](WireMsg::Hello); coordinator
/// answers [`Welcome`](WireMsg::Welcome) (or
/// [`Reject`](WireMsg::Reject)) and ships the
/// [`Corpus`](WireMsg::Corpus). Steady state: coordinator pushes
/// [`Task`](WireMsg::Task)s; worker streams
/// [`Heartbeat`](WireMsg::Heartbeat)s from a side thread and answers
/// each task with [`TaskDone`](WireMsg::TaskDone) or
/// [`TaskFailed`](WireMsg::TaskFailed). Teardown: coordinator sends
/// [`Shutdown`](WireMsg::Shutdown) once every task has a result.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Worker registration: both version numbers plus a human-readable
    /// worker name (used in logs and the `KF_DIST_FAIL` fault knob).
    Hello {
        /// The worker's [`PROTOCOL_VERSION`].
        protocol: u32,
        /// The worker's [`crate::checkpoint::FORMAT_VERSION`].
        format: u16,
        /// Worker name.
        worker: String,
    },
    /// Registration accepted.
    Welcome {
        /// Coordinator-assigned worker id.
        worker_id: u32,
        /// Heartbeat cadence the coordinator expects, in milliseconds.
        heartbeat_interval_ms: u64,
    },
    /// Registration refused (version skew, shutting down, ...).
    Reject {
        /// Human-readable reason.
        reason: String,
    },
    /// A whole corpus checkpoint file, shipped verbatim (magic and
    /// version header included).
    Corpus {
        /// Checkpoint bytes ([`crate::checkpoint::ArtifactKind::Corpus`]).
        bytes: Vec<u8>,
    },
    /// A shard dispatch.
    Task {
        /// What to fuse and under which settings.
        spec: TaskSpec,
    },
    /// Worker liveness signal, sent on a fixed cadence from a dedicated
    /// thread so a long fuse never reads as death.
    Heartbeat {
        /// Monotonic per-worker sequence number.
        seq: u64,
    },
    /// A finished shard: the report checkpoint, shipped verbatim.
    TaskDone {
        /// Echo of [`TaskSpec::task_id`].
        task_id: u32,
        /// Checkpoint bytes ([`crate::checkpoint::ArtifactKind::Report`]).
        report: Vec<u8>,
    },
    /// A shard the worker could not finish (the worker stays alive; the
    /// coordinator re-dispatches with backoff).
    TaskFailed {
        /// Echo of [`TaskSpec::task_id`].
        task_id: u32,
        /// Human-readable error.
        error: String,
    },
    /// All tasks have results; workers exit on receipt.
    Shutdown,
}

impl KvCodec for WireMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WireMsg::Hello {
                protocol,
                format,
                worker,
            } => {
                out.push(0);
                protocol.encode(out);
                format.encode(out);
                worker.encode(out);
            }
            WireMsg::Welcome {
                worker_id,
                heartbeat_interval_ms,
            } => {
                out.push(1);
                worker_id.encode(out);
                heartbeat_interval_ms.encode(out);
            }
            WireMsg::Reject { reason } => {
                out.push(2);
                reason.encode(out);
            }
            WireMsg::Corpus { bytes } => {
                out.push(3);
                bytes.encode(out);
            }
            WireMsg::Task { spec } => {
                out.push(4);
                spec.encode(out);
            }
            WireMsg::Heartbeat { seq } => {
                out.push(5);
                seq.encode(out);
            }
            WireMsg::TaskDone { task_id, report } => {
                out.push(6);
                task_id.encode(out);
                report.encode(out);
            }
            WireMsg::TaskFailed { task_id, error } => {
                out.push(7);
                task_id.encode(out);
                error.encode(out);
            }
            WireMsg::Shutdown => out.push(8),
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(WireMsg::Hello {
                protocol: u32::decode(input)?,
                format: u16::decode(input)?,
                worker: String::decode(input)?,
            }),
            1 => Some(WireMsg::Welcome {
                worker_id: u32::decode(input)?,
                heartbeat_interval_ms: u64::decode(input)?,
            }),
            2 => Some(WireMsg::Reject {
                reason: String::decode(input)?,
            }),
            3 => Some(WireMsg::Corpus {
                bytes: Vec::decode(input)?,
            }),
            4 => Some(WireMsg::Task {
                spec: TaskSpec::decode(input)?,
            }),
            5 => Some(WireMsg::Heartbeat {
                seq: u64::decode(input)?,
            }),
            6 => Some(WireMsg::TaskDone {
                task_id: u32::decode(input)?,
                report: Vec::decode(input)?,
            }),
            7 => Some(WireMsg::TaskFailed {
                task_id: u32::decode(input)?,
                error: String::decode(input)?,
            }),
            8 => Some(WireMsg::Shutdown),
            _ => None,
        }
    }
}

impl WireMsg {
    /// Short stable name for logs and telemetry labels.
    pub fn name(&self) -> &'static str {
        match self {
            WireMsg::Hello { .. } => "hello",
            WireMsg::Welcome { .. } => "welcome",
            WireMsg::Reject { .. } => "reject",
            WireMsg::Corpus { .. } => "corpus",
            WireMsg::Task { .. } => "task",
            WireMsg::Heartbeat { .. } => "heartbeat",
            WireMsg::TaskDone { .. } => "task-done",
            WireMsg::TaskFailed { .. } => "task-failed",
            WireMsg::Shutdown => "shutdown",
        }
    }
}

/// Write one frame, returning the total bytes put on the wire (length
/// prefix included). Flushes, so a frame is either fully queued to the
/// kernel or errored — never half-buffered across a send boundary.
pub fn write_frame(w: &mut impl Write, msg: &WireMsg) -> io::Result<usize> {
    let mut payload = Vec::new();
    msg.encode(&mut payload);
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload of {} bytes exceeds the cap", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(payload.len() + 4)
}

/// Read one frame, returning the message and the total bytes consumed.
///
/// A clean EOF before the length prefix surfaces as
/// [`io::ErrorKind::UnexpectedEof`] (the peer hung up); an oversized
/// length, a payload that does not decode, or trailing bytes after the
/// message surface as [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl Read) -> io::Result<(WireMsg, usize)> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("declared frame length {len} exceeds the cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut input = &payload[..];
    let msg = WireMsg::decode(&mut input).ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidData, "frame payload does not parse")
    })?;
    if !input.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame payload has trailing bytes after the message",
        ));
    }
    Ok((msg, len + 4))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_task() -> TaskSpec {
        TaskSpec {
            task_id: 3,
            shard_index: 3,
            shard_count: 5,
            presets: vec!["popaccu_plus".into()],
            scale: "paper".into(),
            bins: 10,
            workers: 0,
            diagnose: true,
            deterministic: true,
        }
    }

    fn all_messages() -> Vec<WireMsg> {
        vec![
            WireMsg::Hello {
                protocol: PROTOCOL_VERSION,
                format: crate::checkpoint::FORMAT_VERSION,
                worker: "w0".into(),
            },
            WireMsg::Welcome {
                worker_id: 2,
                heartbeat_interval_ms: 250,
            },
            WireMsg::Reject {
                reason: "protocol skew".into(),
            },
            WireMsg::Corpus {
                bytes: vec![0x4b, 0x46, 0x43, 0x50, 0, 0],
            },
            WireMsg::Task {
                spec: sample_task(),
            },
            WireMsg::Heartbeat { seq: 41 },
            WireMsg::TaskDone {
                task_id: 3,
                report: vec![1, 2, 3],
            },
            WireMsg::TaskFailed {
                task_id: 3,
                error: "fuse panicked".into(),
            },
            WireMsg::Shutdown,
        ]
    }

    #[test]
    fn every_message_roundtrips_through_codec_and_framing() {
        for msg in all_messages() {
            let mut buf = Vec::new();
            msg.encode(&mut buf);
            let mut input = &buf[..];
            assert_eq!(WireMsg::decode(&mut input), Some(msg.clone()), "{msg:?}");
            assert!(input.is_empty(), "{msg:?} left bytes");

            let mut wire = Vec::new();
            let written = write_frame(&mut wire, &msg).unwrap();
            assert_eq!(written, wire.len());
            let (back, consumed) = read_frame(&mut &wire[..]).unwrap();
            assert_eq!(back, msg);
            assert_eq!(consumed, wire.len());
        }
    }

    #[test]
    fn frames_stream_back_to_back() {
        let mut wire = Vec::new();
        for msg in all_messages() {
            write_frame(&mut wire, &msg).unwrap();
        }
        let mut reader = &wire[..];
        for msg in all_messages() {
            let (back, _) = read_frame(&mut reader).unwrap();
            assert_eq!(back, msg);
        }
        assert!(reader.is_empty());
        // The next read reports the hang-up, not garbage.
        assert_eq!(
            read_frame(&mut reader).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn truncated_frames_never_parse() {
        let mut wire = Vec::new();
        write_frame(
            &mut wire,
            &WireMsg::Task {
                spec: sample_task(),
            },
        )
        .unwrap();
        for cut in 0..wire.len() {
            assert!(
                read_frame(&mut &wire[..cut]).is_err(),
                "cut at {cut} parsed"
            );
        }
    }

    #[test]
    fn oversized_and_malformed_frames_are_invalid_data() {
        // A declared length over the cap is rejected before allocation.
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        assert_eq!(
            read_frame(&mut &wire[..]).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        // An unknown message tag does not parse.
        let mut wire = Vec::new();
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.push(200);
        assert_eq!(
            read_frame(&mut &wire[..]).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        // Trailing bytes after a complete message are corruption.
        let mut payload = Vec::new();
        WireMsg::Shutdown.encode(&mut payload);
        payload.push(0);
        let mut wire = Vec::new();
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&payload);
        assert_eq!(
            read_frame(&mut &wire[..]).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn message_names_are_stable() {
        let names: Vec<&str> = all_messages().iter().map(WireMsg::name).collect();
        assert_eq!(
            names,
            [
                "hello",
                "welcome",
                "reject",
                "corpus",
                "task",
                "heartbeat",
                "task-done",
                "task-failed",
                "shutdown"
            ]
        );
    }
}
