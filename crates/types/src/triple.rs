//! Knowledge triples and data items.

use crate::ids::{EntityId, PredicateId};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A *data item* in data-fusion terms: a `(subject, predicate)` pair
/// describing one aspect of an entity — e.g. *(Tom Cruise, birth date)*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DataItem {
    /// Subject entity.
    pub subject: EntityId,
    /// Predicate.
    pub predicate: PredicateId,
}

impl DataItem {
    /// Construct a data item.
    #[inline]
    pub fn new(subject: EntityId, predicate: PredicateId) -> Self {
        DataItem { subject, predicate }
    }

    /// Stable 64-bit encoding used for partitioning.
    #[inline]
    pub fn encode(self) -> u64 {
        ((self.subject.0 as u64) << 32) | self.predicate.0 as u64
    }
}

/// An RDF-style knowledge triple `(subject, predicate, object)` —
/// e.g. *(Tom Cruise, birth date, 7/3/1962)*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Triple {
    /// Subject entity.
    pub subject: EntityId,
    /// Predicate.
    pub predicate: PredicateId,
    /// Object value.
    pub object: Value,
}

impl Triple {
    /// Construct a triple.
    #[inline]
    pub fn new(subject: EntityId, predicate: PredicateId, object: Value) -> Self {
        Triple {
            subject,
            predicate,
            object,
        }
    }

    /// The data item this triple provides a value for.
    #[inline]
    pub fn data_item(&self) -> DataItem {
        DataItem::new(self.subject, self.predicate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::StrId;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(EntityId(s), PredicateId(p), Value::Entity(EntityId(o)))
    }

    #[test]
    fn triple_data_item_projection() {
        let tr = t(1, 2, 3);
        assert_eq!(tr.data_item(), DataItem::new(EntityId(1), PredicateId(2)));
    }

    #[test]
    fn data_item_encode_is_injective_for_small_ids() {
        let a = DataItem::new(EntityId(1), PredicateId(2)).encode();
        let b = DataItem::new(EntityId(2), PredicateId(1)).encode();
        assert_ne!(a, b);
    }

    #[test]
    fn triples_with_same_item_different_objects_are_distinct() {
        let a = t(1, 2, 3);
        let b = Triple::new(EntityId(1), PredicateId(2), Value::Str(StrId(3)));
        assert_eq!(a.data_item(), b.data_item());
        assert_ne!(a, b);
    }

    #[test]
    fn triple_ordering_is_lexicographic() {
        assert!(t(1, 2, 3) < t(1, 2, 4));
        assert!(t(1, 2, 9) < t(1, 3, 0));
        assert!(t(1, 9, 9) < t(2, 0, 0));
    }
}
