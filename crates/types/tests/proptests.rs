//! Property-based tests for the core data model.

use kf_types::*;
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0u32..10_000).prop_map(|e| Value::Entity(EntityId(e))),
        (0u32..10_000).prop_map(|s| Value::Str(StrId(s))),
        (-1_000_000i64..1_000_000).prop_map(|n| Value::Num(Numeric(n))),
    ]
}

fn arb_triple() -> impl Strategy<Value = Triple> {
    ((0u32..5_000), (0u32..500), arb_value())
        .prop_map(|(s, p, o)| Triple::new(EntityId(s), PredicateId(p), o))
}

fn arb_provenance() -> impl Strategy<Value = Provenance> {
    ((0u16..12), (0u32..100_000), (0u32..1_000), (0u32..5_000)).prop_map(|(e, pg, st, pat)| {
        Provenance::new(ExtractorId(e), PageId(pg), SiteId(st), PatternId(pat))
    })
}

proptest! {
    /// KvCodec roundtrips exactly — for the shapes the shuffles actually
    /// spill: triples, packed provenance keys, and nested group tuples —
    /// and decode consumes precisely the bytes encode produced.
    #[test]
    fn codec_roundtrips_shuffle_shapes(
        triple in arb_triple(),
        prov in arb_provenance(),
        predicate in 0u32..500,
        values in prop::collection::vec((any::<u64>(), any::<u16>(), 0.0f64..1.0), 0..40),
        granularity_idx in 0usize..Granularity::ALL.len(),
    ) {
        fn roundtrip<T: KvCodec + PartialEq + std::fmt::Debug>(x: &T) {
            let mut buf = Vec::new();
            x.encode(&mut buf);
            let mut input = &buf[..];
            prop_assert_eq!(T::decode(&mut input).as_ref(), Some(x));
            prop_assert!(input.is_empty(), "decode left {} bytes", input.len());
        }
        roundtrip(&triple);
        let key = ProvenanceKey::at(Granularity::ALL[granularity_idx], &prov, PredicateId(predicate));
        roundtrip(&key);
        // A spilled group frame: (key, Vec<value>) as the engine writes it.
        roundtrip(&(triple.data_item(), values));
    }

    /// Value::encode never collides across variants for realistic id ranges.
    #[test]
    fn value_encode_injective(a in arb_value(), b in arb_value()) {
        if a != b {
            prop_assert_ne!(a.encode(), b.encode());
        } else {
            prop_assert_eq!(a.encode(), b.encode());
        }
    }

    /// DataItem::encode is injective over the u32 id space.
    #[test]
    fn data_item_encode_injective(s1 in any::<u32>(), p1 in any::<u32>(),
                                  s2 in any::<u32>(), p2 in any::<u32>()) {
        let a = DataItem::new(EntityId(s1), PredicateId(p1));
        let b = DataItem::new(EntityId(s2), PredicateId(p2));
        prop_assert_eq!(a.encode() == b.encode(), a == b);
    }

    /// A triple's data item always matches its subject/predicate.
    #[test]
    fn triple_item_projection(t in arb_triple()) {
        let item = t.data_item();
        prop_assert_eq!(item.subject, t.subject);
        prop_assert_eq!(item.predicate, t.predicate);
    }

    /// Projecting a provenance onto any granularity only ever *erases*
    /// information: every populated field equals the source field.
    #[test]
    fn provenance_key_fields_come_from_source(
        prov in arb_provenance(),
        pred in (0u32..500).prop_map(PredicateId),
        g in prop_oneof![
            Just(Granularity::ExtractorPage),
            Just(Granularity::ExtractorSite),
            Just(Granularity::ExtractorSitePredicate),
            Just(Granularity::ExtractorSitePredicatePattern),
            Just(Granularity::ExtractorPatternOnly),
            Just(Granularity::PageOnly),
        ],
    ) {
        let k = ProvenanceKey::at(g, &prov, pred);
        if let Some(e) = k.extractor { prop_assert_eq!(e, prov.extractor); }
        if let Some(p) = k.page { prop_assert_eq!(p, prov.page); }
        if let Some(s) = k.site { prop_assert_eq!(s, prov.site); }
        if let Some(p) = k.predicate { prop_assert_eq!(p, pred); }
        if let Some(p) = k.pattern { prop_assert_eq!(p, prov.pattern); }
    }

    /// Same (granularity, provenance, predicate) always gives the same key —
    /// provenance keys must be stable across the iterative pipeline rounds.
    #[test]
    fn provenance_key_deterministic(prov in arb_provenance(),
                                    pred in (0u32..500).prop_map(PredicateId)) {
        for g in Granularity::ALL {
            prop_assert_eq!(
                ProvenanceKey::at(g, &prov, pred),
                ProvenanceKey::at(g, &prov, pred)
            );
        }
    }

    /// LCWA invariants: inserting a triple makes it True; any other value on
    /// the same item becomes False; untouched items stay Unknown.
    #[test]
    fn gold_standard_lcwa(t in arb_triple(), other in arb_value(), foreign in arb_triple()) {
        let mut gs = GoldStandard::new();
        gs.insert(t.data_item(), t.object);
        prop_assert_eq!(gs.label(&t), Label::True);
        if other != t.object {
            let conflicting = Triple::new(t.subject, t.predicate, other);
            prop_assert_eq!(gs.label(&conflicting), Label::False);
        }
        if foreign.data_item() != t.data_item() {
            prop_assert_eq!(gs.label(&foreign), Label::Unknown);
        }
    }

    /// Gold-standard truth histogram always sums to the number of items.
    #[test]
    fn gold_histogram_mass(pairs in prop::collection::vec((arb_triple(), 1usize..4), 1..50)) {
        let mut gs = GoldStandard::new();
        for (t, extra) in &pairs {
            for i in 0..*extra {
                gs.insert(t.data_item(), Value::Entity(EntityId(i as u32)));
            }
        }
        let hist = gs.truth_count_histogram(10);
        prop_assert_eq!(hist.iter().sum::<usize>(), gs.n_items());
    }

    /// SkewSummary invariants: min <= median <= max and min <= mean <= max.
    #[test]
    fn skew_summary_bounds(counts in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let s = SkewSummary::from_counts(&counts).unwrap();
        prop_assert!(s.min as f64 <= s.median);
        prop_assert!(s.median <= s.max as f64);
        prop_assert!(s.min as f64 <= s.mean && s.mean <= s.max as f64);
        prop_assert_eq!(s.count, counts.len());
    }

    /// Interner: resolve(intern(s)) == s, and re-interning is stable.
    #[test]
    fn interner_roundtrip(strings in prop::collection::vec("[a-z]{1,12}", 1..50)) {
        let mut i = Interner::new();
        let ids: Vec<_> = strings.iter().map(|s| i.intern(s)).collect();
        for (s, id) in strings.iter().zip(&ids) {
            prop_assert_eq!(i.resolve(*id), s.as_str());
            prop_assert_eq!(i.intern(s), *id);
        }
    }

    /// A whole TaxonomyReport roundtrips through KvCodec exactly —
    /// the first full-report type covered by the hand-rolled codec
    /// (whole-output serialization), not just shuffle cells.
    #[test]
    fn taxonomy_report_roundtrips(
        bands in prop::collection::vec(
            ((0.0f64..1.0), 0u64..1_000, arb_counts()), 0..5),
        groups in prop::collection::vec((0u32..100, "[A-Z]{2,6}", arb_counts()), 0..20),
        confusion in prop::collection::vec((0usize..4, 0usize..4, 1u64..500), 0..16),
        accs in prop::collection::vec((0usize..4, 0.0f64..1.0), 0..4),
        attribution in (0u64..100, 0u64..100, any::<bool>()),
    ) {
        let bands: Vec<BandBreakdown> = bands
            .into_iter()
            .map(|(lo, n_true, counts)| BandBreakdown {
                lo,
                hi: lo + 0.1,
                n_labelled: n_true + counts.total(),
                n_true,
                counts,
            })
            .collect();
        let groups: Vec<GroupBreakdown> = groups
            .into_iter()
            .map(|(key, label, counts)| GroupBreakdown { key, label, counts })
            .collect();
        let report = TaxonomyReport {
            n_false_positives: bands.iter().map(|b| b.counts.total()).sum(),
            n_labelled: bands.iter().map(|b| b.n_labelled).sum(),
            bands,
            predicates: groups.clone(),
            extractors: groups.clone(),
            spread: groups.clone(),
            scenarios: groups,
            confusion: confusion
                .into_iter()
                .map(|(h, i, count)| ConfusionCell {
                    heuristic: ErrorCategory::from_index(h).unwrap(),
                    injected: ErrorCategory::from_index(i).unwrap(),
                    count,
                })
                .collect(),
            mean_prov_accuracy: accs
                .into_iter()
                .map(|(c, a)| (ErrorCategory::from_index(c).unwrap(), a))
                .collect(),
            systematic_attribution: attribution.2.then_some(CategoryAccuracy {
                correct: attribution.0.min(attribution.1),
                total: attribution.1,
            }),
            generalized_attribution: None,
        };

        let mut buf = Vec::new();
        report.encode(&mut buf);
        let mut input = &buf[..];
        prop_assert_eq!(TaxonomyReport::decode(&mut input).as_ref(), Some(&report));
        prop_assert!(input.is_empty(), "decode left {} bytes", input.len());

        // Every strict prefix of the encoding must be rejected, not
        // misread — the truncation contract the spill reader relies on.
        if !buf.is_empty() {
            let cut = buf.len() / 2;
            let mut truncated = &buf[..cut.min(buf.len() - 1)];
            prop_assert_eq!(TaxonomyReport::decode(&mut truncated), None);
        }
    }
}

fn arb_counts() -> impl Strategy<Value = CategoryCounts> {
    ((0u64..100), (0u64..100), (0u64..100), (0u64..100))
        .prop_map(|(a, b, c, d)| CategoryCounts([a, b, c, d]))
}
