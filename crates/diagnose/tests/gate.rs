//! The attribution-accuracy gate (ignored by default; CI runs it in
//! release on every push):
//!
//! ```text
//! cargo test --release -p kf-diagnose --test gate -- --ignored
//! ```
//!
//! On the default (paper-scale) corpus, across all five presets, ≥ 90% of
//! the injected `SystematicError` and `Generalized` outcomes among the
//! diagnosed false positives must be attributed to the correct heuristic
//! category — the acceptance bound for the Fig. 17 reproduction.
//! Classifier regressions fail this test, and therefore the build.

use kf_core::{Fuser, FusionConfig};
use kf_diagnose::{Diagnoser, SupportIndex};
use kf_mapreduce::MrConfig;
use kf_synth::{Corpus, SynthConfig};
use kf_types::CategoryAccuracy;

#[test]
#[ignore]
fn attribution_accuracy_on_default_corpus() {
    // CI snapshots the default corpus once and shares it across gates via
    // KF_CORPUS; the gate regenerates when run standalone.
    let corpus = match std::env::var("KF_CORPUS") {
        Ok(path) => Corpus::load(&path).expect("KF_CORPUS names a readable corpus checkpoint"),
        Err(_) => Corpus::generate(&SynthConfig::paper(), 42),
    };
    let (support, _) = SupportIndex::build(&corpus.batch.records, &MrConfig::default());
    let truth = corpus.taxonomy_truth();
    let labels: Vec<String> = corpus.extractors.iter().map(|e| e.name.clone()).collect();

    let presets: [(&str, FusionConfig, bool); 5] = [
        ("vote", FusionConfig::vote(), false),
        ("accu", FusionConfig::accu(), false),
        ("popaccu", FusionConfig::popaccu(), false),
        (
            "popaccu_plus_unsup",
            FusionConfig::popaccu_plus_unsup(),
            false,
        ),
        ("popaccu_plus", FusionConfig::popaccu_plus(), true),
    ];
    let mut systematic = CategoryAccuracy::default();
    let mut generalized = CategoryAccuracy::default();
    for (name, cfg, needs_gold) in presets {
        let gold = needs_gold.then_some(&corpus.gold);
        let (output, attribution) = Fuser::new(cfg).run_with_attribution(&corpus.batch, gold);
        let (report, _) = Diagnoser::new(&corpus.gold, &corpus.world, &support)
            .with_truth(&truth)
            .with_attribution(&attribution)
            .with_extractor_labels(&labels)
            .run(&output);
        let sys = report.systematic_attribution.expect("truth join provided");
        let gen = report.generalized_attribution.expect("truth join provided");
        eprintln!(
            "{name:20}: {} FPs of {} labelled | systematic {}/{} generalized {}/{}",
            report.n_false_positives,
            report.n_labelled,
            sys.correct,
            sys.total,
            gen.correct,
            gen.total,
        );
        systematic.correct += sys.correct;
        systematic.total += sys.total;
        generalized.correct += gen.correct;
        generalized.total += gen.total;
    }
    eprintln!(
        "aggregate: systematic {}/{} ({:.1}%), generalized {}/{} ({:.1}%)",
        systematic.correct,
        systematic.total,
        100.0 * systematic.accuracy(),
        generalized.correct,
        generalized.total,
        100.0 * generalized.accuracy(),
    );

    // A gate over a handful of samples would be noise; the default corpus
    // must surface a real population of both injected kinds.
    assert!(
        systematic.total >= 50,
        "only {} injected-systematic diagnosed FPs — corpus regressed",
        systematic.total
    );
    assert!(
        generalized.total >= 10,
        "only {} injected-generalized diagnosed FPs — corpus regressed",
        generalized.total
    );
    assert!(
        systematic.accuracy() >= 0.9,
        "systematic attribution accuracy {:.3} below the 0.9 gate ({}/{})",
        systematic.accuracy(),
        systematic.correct,
        systematic.total
    );
    assert!(
        generalized.accuracy() >= 0.9,
        "generalized attribution accuracy {:.3} below the 0.9 gate ({}/{})",
        generalized.accuracy(),
        generalized.correct,
        generalized.total
    );
}
