//! Property tests for the taxonomy: across corpus shapes, classifier
//! thresholds and band layouts, the category counts must **exactly
//! partition** the labelled false positives — no double-count, no drop.

use kf_core::{Fuser, FusionConfig};
use kf_diagnose::{ClassifierThresholds, DiagnoseConfig, Diagnoser, SupportIndex};
use kf_mapreduce::MrConfig;
use kf_synth::{Corpus, SynthConfig};
use kf_types::Label;
use proptest::prelude::*;

proptest! {
    /// For any corpus seed, any thresholds and any band floor, each
    /// band's category counts sum to exactly its false positives, every
    /// secondary dimension conserves the same mass, and the totals match
    /// an independent sequential count over the scored output.
    #[test]
    fn categories_partition_false_positives(
        seed in 0u64..6,
        use_plus in any::<bool>(),
        min_pages in 1u32..6,
        share in 0.0f64..1.0,
        lcwa_exts in 1u16..6,
        floor_idx in 0usize..3,
    ) {
        let corpus = Corpus::generate(&SynthConfig::tiny(), seed);
        let cfg = if use_plus {
            FusionConfig::popaccu_plus_unsup()
        } else {
            FusionConfig::popaccu()
        };
        let output = Fuser::new(cfg.with_workers(2)).run(&corpus.batch, None);
        let (support, _) =
            SupportIndex::build(&corpus.batch.records, &MrConfig::with_workers(2));
        let truth = corpus.taxonomy_truth();

        let floor = [0.3, 0.5, 0.8][floor_idx];
        let diag_cfg = DiagnoseConfig {
            band_edges: vec![floor, 0.9],
            thresholds: ClassifierThresholds {
                systematic_min_pages: min_pages,
                systematic_min_share: share,
                lcwa_min_extractors: lcwa_exts,
            },
            mr: MrConfig::with_workers(2),
        };
        let (report, _) = Diagnoser::new(&corpus.gold, &corpus.world, &support)
            .with_truth(&truth)
            .with_config(diag_cfg)
            .run(&output);

        // Independent sequential count of the diagnosed population.
        let mut expect_labelled = 0u64;
        let mut expect_fps = 0u64;
        for s in &output.scored {
            let Some(p) = s.probability else { continue };
            if p < floor {
                continue;
            }
            match corpus.gold.label(&s.triple) {
                Label::True => expect_labelled += 1,
                Label::False => {
                    expect_labelled += 1;
                    expect_fps += 1;
                }
                Label::Unknown => {}
            }
        }
        prop_assert_eq!(report.n_labelled, expect_labelled);
        prop_assert_eq!(report.n_false_positives, expect_fps);

        // Partition: per band, categories sum to the band's FPs...
        for band in &report.bands {
            prop_assert_eq!(
                band.counts.total(),
                band.n_labelled - band.n_true,
                "band [{}, {}) does not partition", band.lo, band.hi
            );
        }
        // ...and bands sum to the total.
        let band_mass: u64 = report.bands.iter().map(|b| b.counts.total()).sum();
        prop_assert_eq!(band_mass, expect_fps);

        // Secondary dimensions conserve the same mass exactly (the
        // extractor dimension over-counts by design: one FP per
        // supporting extractor, never fewer than once).
        let pred_mass: u64 = report.predicates.iter().map(|g| g.counts.total()).sum();
        let spread_mass: u64 = report.spread.iter().map(|g| g.counts.total()).sum();
        let confusion_mass: u64 = report.confusion.iter().map(|c| c.count).sum();
        prop_assert_eq!(pred_mass, expect_fps);
        prop_assert_eq!(spread_mass, expect_fps);
        prop_assert_eq!(confusion_mass, expect_fps, "truth covers every FP");
        if expect_fps > 0 {
            let ext_mass: u64 = report.extractors.iter().map(|g| g.counts.total()).sum();
            prop_assert!(ext_mass >= expect_fps);
        }
    }
}
