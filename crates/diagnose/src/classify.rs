//! The heuristic false-positive classifiers (Fig. 17).
//!
//! Each labelled false positive in the high-confidence bands is assigned
//! exactly one [`ErrorCategory`] by four priority-ordered rules — the
//! classifier is total, so the categories *partition* the false positives
//! (pinned by the crate's proptests):
//!
//! | # | rule | category |
//! |---|------|----------|
//! | 1 | the reported value is hierarchy-related to a gold value of the item, or is an interior ontology node while the gold list holds hierarchy values | [`WrongButGeneral`](ErrorCategory::WrongButGeneral) |
//! | 2 | the support concentrates in one extractor (top page-share ≥ θ) across several pages | [`SystematicExtraction`](ErrorCategory::SystematicExtraction) |
//! | 3 | three or more extractors corroborate the value, or the gold list is already multi-valued (open list) | [`LcwaArtifact`](ErrorCategory::LcwaArtifact) |
//! | 4 | anything else — narrow, scattered support | [`LinkageError`](ErrorCategory::LinkageError) |
//!
//! Rule 1 consults only the *ontology* (the value hierarchy the real
//! system reads from Freebase) and the gold list — never the hidden
//! ground-truth facts. Rules 2–4 read the support shape derived from the
//! extraction batch itself ([`SupportProfile`]). The rules are heuristics:
//! their agreement with the generator-injected categories is *measured*
//! (the confusion matrix in [`TaxonomyReport`](kf_types::TaxonomyReport))
//! rather than assumed, and a CI gate keeps attribution accuracy on
//! injected systematic/generalized errors at ≥ 90%.

use crate::support::SupportProfile;
use kf_types::{ErrorCategory, Triple, Value, ValueHierarchy};

/// Thresholds for rules 2 and 3. Part of
/// [`DiagnoseConfig`](crate::DiagnoseConfig).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassifierThresholds {
    /// Rule 2: minimum distinct pages for a systematic-error call — a
    /// broken (pattern, item) cell replays the same wrong triple on every
    /// page the extractor reads, so real systematic errors in the high
    /// bands are many-page.
    pub systematic_min_pages: u32,
    /// Rule 2: minimum share of (extractor, page) support pairs the top
    /// extractor must hold. Faithful triples spread support roughly
    /// evenly over the extractors reading the section (~1/k each).
    pub systematic_min_share: f64,
    /// Rule 3: distinct extractors that make a value "corroborated" —
    /// a faithfully extracted true-but-ungold value is read by most
    /// extractors covering its section.
    pub lcwa_min_extractors: u16,
}

impl Default for ClassifierThresholds {
    fn default() -> Self {
        ClassifierThresholds {
            systematic_min_pages: 2,
            systematic_min_share: 0.5,
            lcwa_min_extractors: 3,
        }
    }
}

/// Classify one labelled false positive. Total: always returns a
/// category, so category counts exactly partition the false positives.
///
/// * `gold_values` — the gold list of the triple's data item (non-empty
///   for any labelled triple).
/// * `profile` — the triple's support shape; `None` degrades rules 2–3
///   to their gold-list-only clauses.
pub fn classify<H: ValueHierarchy>(
    triple: &Triple,
    gold_values: &[Value],
    profile: Option<&SupportProfile>,
    hierarchy: &H,
    thresholds: &ClassifierThresholds,
) -> ErrorCategory {
    // Rule 1 — wrong-but-general: the value generalises (or specialises)
    // a gold value along the ontology, or it is an interior ontology node
    // reported for an item whose gold values live in the hierarchy (the
    // gold list may record a *different* leaf, e.g. a second truth the
    // extractor generalised).
    let object = triple.object;
    let gold_in_hierarchy = gold_values
        .iter()
        .any(|&g| hierarchy.parent(g).is_some() || hierarchy.is_interior(g));
    if gold_values
        .iter()
        .any(|&g| g != object && hierarchy.related(object, g))
        || (hierarchy.is_interior(object) && gold_in_hierarchy)
    {
        return ErrorCategory::WrongButGeneral;
    }

    // Rule 2 — systematic extraction: the same wrong triple on several
    // pages, dominated by a single extractor.
    if let Some(p) = profile {
        if p.n_pages >= thresholds.systematic_min_pages
            && p.top_share() >= thresholds.systematic_min_share
        {
            return ErrorCategory::SystematicExtraction;
        }
    }

    // Rule 3 — LCWA artifact: broad cross-extractor corroboration (the
    // faithful-extraction signature), or an already-open gold list.
    let n_extractors = profile.map_or(0, SupportProfile::n_extractors);
    if n_extractors >= thresholds.lcwa_min_extractors || gold_values.len() >= 2 {
        return ErrorCategory::LcwaArtifact;
    }

    // Rule 4 — linkage / triple-identification mistake.
    ErrorCategory::LinkageError
}

#[cfg(test)]
mod tests {
    use super::*;
    use kf_types::{EntityId, ExtractorId, NoHierarchy, PredicateId};

    /// Two chains (child → parent): 1 → 2 → 3 and 4 → 5; the parents
    /// {2, 3, 5} are interior.
    struct Chain;
    impl ValueHierarchy for Chain {
        fn parent(&self, v: Value) -> Option<Value> {
            match v {
                Value::Entity(EntityId(1)) => Some(Value::Entity(EntityId(2))),
                Value::Entity(EntityId(2)) => Some(Value::Entity(EntityId(3))),
                Value::Entity(EntityId(4)) => Some(Value::Entity(EntityId(5))),
                _ => None,
            }
        }
        fn is_interior(&self, v: Value) -> bool {
            matches!(
                v,
                Value::Entity(EntityId(2))
                    | Value::Entity(EntityId(3))
                    | Value::Entity(EntityId(5))
            )
        }
    }

    fn triple(o: u32) -> Triple {
        Triple::new(EntityId(9), PredicateId(0), Value::Entity(EntityId(o)))
    }

    fn profile(per_extractor: &[(u16, u32)], n_pages: u32) -> SupportProfile {
        SupportProfile {
            n_pages,
            per_extractor: per_extractor
                .iter()
                .map(|&(e, n)| (ExtractorId(e), n))
                .collect(),
        }
    }

    fn thresholds() -> ClassifierThresholds {
        ClassifierThresholds::default()
    }

    #[test]
    fn parent_of_gold_value_is_wrong_but_general() {
        // Gold records the leaf 1; the extraction reported its parent 2.
        let cat = classify(
            &triple(2),
            &[Value::Entity(EntityId(1))],
            None,
            &Chain,
            &thresholds(),
        );
        assert_eq!(cat, ErrorCategory::WrongButGeneral);
        // And the reverse: gold records the parent, extraction the leaf
        // ("more specific value").
        let cat = classify(
            &triple(1),
            &[Value::Entity(EntityId(2))],
            None,
            &Chain,
            &thresholds(),
        );
        assert_eq!(cat, ErrorCategory::WrongButGeneral);
    }

    #[test]
    fn unrelated_interior_node_for_hierarchy_item_is_wrong_but_general() {
        // Gold records leaf 1 (a hierarchy value); the reported value 5 is
        // an interior node of a *different* branch — not on 1's ancestor
        // chain, so only the interior-node clause of rule 1 can catch it
        // (a generalisation of a second truth the gold list is missing).
        let cat = classify(
            &triple(5),
            &[Value::Entity(EntityId(1))],
            None,
            &Chain,
            &thresholds(),
        );
        assert_eq!(cat, ErrorCategory::WrongButGeneral);
        // The same interior value reported for a non-hierarchy item does
        // NOT trigger rule 1.
        let cat = classify(
            &triple(5),
            &[Value::Entity(EntityId(77))],
            None,
            &Chain,
            &thresholds(),
        );
        assert_ne!(cat, ErrorCategory::WrongButGeneral);
    }

    #[test]
    fn one_extractor_many_pages_is_systematic() {
        let p = profile(&[(4, 9), (1, 1)], 9);
        let cat = classify(
            &triple(7),
            &[Value::Entity(EntityId(8))],
            Some(&p),
            &NoHierarchy,
            &thresholds(),
        );
        assert_eq!(cat, ErrorCategory::SystematicExtraction);
    }

    #[test]
    fn broad_corroboration_is_lcwa_artifact() {
        let p = profile(&[(0, 3), (1, 2), (2, 3), (5, 2)], 4);
        let cat = classify(
            &triple(7),
            &[Value::Entity(EntityId(8))],
            Some(&p),
            &NoHierarchy,
            &thresholds(),
        );
        assert_eq!(cat, ErrorCategory::LcwaArtifact);
    }

    #[test]
    fn open_gold_list_is_lcwa_even_with_narrow_support() {
        let p = profile(&[(0, 1)], 1);
        let cat = classify(
            &triple(7),
            &[Value::Entity(EntityId(8)), Value::Entity(EntityId(9))],
            Some(&p),
            &NoHierarchy,
            &thresholds(),
        );
        assert_eq!(cat, ErrorCategory::LcwaArtifact);
    }

    #[test]
    fn narrow_scattered_support_is_linkage() {
        let p = profile(&[(0, 1), (3, 1)], 1);
        let cat = classify(
            &triple(7),
            &[Value::Entity(EntityId(8))],
            Some(&p),
            &NoHierarchy,
            &thresholds(),
        );
        assert_eq!(cat, ErrorCategory::LinkageError);
        // No profile at all degrades to linkage too.
        let cat = classify(
            &triple(7),
            &[Value::Entity(EntityId(8))],
            None,
            &NoHierarchy,
            &thresholds(),
        );
        assert_eq!(cat, ErrorCategory::LinkageError);
    }

    #[test]
    fn hierarchy_rule_takes_priority_over_systematic() {
        // A many-page single-extractor profile that ALSO matches the
        // hierarchy rule must classify as wrong-but-general (rule order).
        let p = profile(&[(4, 20)], 20);
        let cat = classify(
            &triple(2),
            &[Value::Entity(EntityId(1))],
            Some(&p),
            &Chain,
            &thresholds(),
        );
        assert_eq!(cat, ErrorCategory::WrongButGeneral);
    }
}
