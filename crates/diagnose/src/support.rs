//! The support-profile job: who produced each unique triple, and from how
//! many pages.
//!
//! The taxonomy classifiers need per-extractor attribution that
//! [`kf_core::FusionOutput`] deliberately does not retain: a false
//! positive supported by *one extractor on many pages* is the signature
//! of a systematic (pattern, data item) extraction breakage, while broad
//! cross-extractor agreement marks a faithfully extracted (and therefore
//! probably LCWA-artifact) triple. [`SupportIndex::build`] derives that
//! attribution from the raw extraction batch with one MapReduce job on
//! the existing engine, so it inherits the chunked/spill residency
//! envelope — on the large corpus the job's grouped residency is
//! bench-asserted to hold `MrConfig::spill_threshold_records`.

use kf_mapreduce::{map_reduce_combined_with_stats, Emitter, JobStats, MrConfig};
use kf_types::{Extraction, ExtractorId, FxHashMap, Triple};

/// The support shape of one unique triple: how many distinct pages
/// produced it, and how those pages distribute over extractors.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SupportProfile {
    /// Distinct pages the triple was extracted from.
    pub n_pages: u32,
    /// Distinct pages per extractor, ascending by extractor id. The page
    /// counts can sum past `n_pages`: several extractors may read the
    /// same page.
    pub per_extractor: Vec<(ExtractorId, u32)>,
}

impl SupportProfile {
    /// Distinct extractors that produced the triple.
    pub fn n_extractors(&self) -> u16 {
        self.per_extractor.len() as u16
    }

    /// The extractor contributing the most pages (smallest id on ties).
    pub fn top_extractor(&self) -> Option<(ExtractorId, u32)> {
        // `per_extractor` ascends by id, so max_by_key with `>` semantics
        // (strictly greater replaces) keeps the smallest id on ties.
        self.per_extractor
            .iter()
            .copied()
            .fold(None, |best: Option<(ExtractorId, u32)>, cur| match best {
                Some((_, n)) if n >= cur.1 => best,
                _ => Some(cur),
            })
    }

    /// The top extractor's share of all (extractor, page) support pairs
    /// — near 1.0 when a single extractor produced the triple everywhere
    /// (the systematic-error signature), near `1/k` for k extractors
    /// corroborating each other. `0.0` for an empty profile.
    pub fn top_share(&self) -> f64 {
        let total: u64 = self.per_extractor.iter().map(|&(_, n)| n as u64).sum();
        if total == 0 {
            return 0.0;
        }
        self.top_extractor().map_or(0.0, |(_, n)| n as f64) / total as f64
    }
}

/// Per-unique-triple [`SupportProfile`]s for one extraction batch.
#[derive(Debug, Clone, Default)]
pub struct SupportIndex {
    map: FxHashMap<Triple, SupportProfile>,
}

impl SupportIndex {
    /// Build the index with one MapReduce job over `records`: map each
    /// extraction to `(triple, (extractor, page))`, sort-and-deduplicate
    /// as a combiner (reducer-invariant — the reducer re-sorts and
    /// deduplicates regardless), and reduce each triple's distinct
    /// support pairs into a profile. Honours every engine residency knob
    /// in `mr` (`chunk_records`, `spill_threshold_records`).
    pub fn build(records: &[Extraction], mr: &MrConfig) -> (SupportIndex, JobStats) {
        let (profiles, stats) = map_reduce_combined_with_stats(
            mr,
            records,
            |e: &Extraction, emit: &mut Emitter<Triple, (u16, u32)>| {
                emit.emit(
                    e.triple,
                    (e.provenance.extractor.raw(), e.provenance.page.raw()),
                );
            },
            |pairs: &mut Vec<(u16, u32)>| {
                pairs.sort_unstable();
                pairs.dedup();
            },
            |triple, mut pairs| {
                pairs.sort_unstable();
                pairs.dedup();
                let mut pages: Vec<u32> = pairs.iter().map(|&(_, page)| page).collect();
                pages.sort_unstable();
                pages.dedup();
                // `pairs` is sorted by (extractor, page) and distinct, so
                // per-extractor page counts are run lengths.
                let mut per_extractor: Vec<(ExtractorId, u32)> = Vec::new();
                for &(ext, _) in &pairs {
                    match per_extractor.last_mut() {
                        Some((prev, n)) if prev.raw() == ext => *n += 1,
                        _ => per_extractor.push((ExtractorId(ext), 1)),
                    }
                }
                vec![(
                    *triple,
                    SupportProfile {
                        n_pages: pages.len() as u32,
                        per_extractor,
                    },
                )]
            },
        );
        let index = SupportIndex {
            map: profiles.into_iter().collect(),
        };
        (index, stats)
    }

    /// The profile of a triple, if it appears in the batch.
    pub fn get(&self, triple: &Triple) -> Option<&SupportProfile> {
        self.map.get(triple)
    }

    /// Number of indexed unique triples.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kf_types::{EntityId, PageId, PatternId, PredicateId, Provenance, SiteId, Value};

    fn ext(o: u32, extractor: u16, page: u32) -> Extraction {
        Extraction::new(
            Triple::new(EntityId(1), PredicateId(0), Value::Entity(EntityId(o))),
            Provenance::new(
                ExtractorId(extractor),
                PageId(page),
                SiteId(page / 10),
                PatternId::NONE,
            ),
        )
    }

    #[test]
    fn profiles_count_distinct_pages_per_extractor() {
        // Triple 7: extractor 0 on pages {1, 2, 2}, extractor 3 on page 1.
        let records = vec![ext(7, 0, 1), ext(7, 0, 2), ext(7, 0, 2), ext(7, 3, 1)];
        let (index, _) = SupportIndex::build(&records, &MrConfig::sequential());
        assert_eq!(index.len(), 1);
        let p = index.get(&records[0].triple).unwrap();
        assert_eq!(p.n_pages, 2);
        assert_eq!(
            p.per_extractor,
            vec![(ExtractorId(0), 2), (ExtractorId(3), 1)]
        );
        assert_eq!(p.n_extractors(), 2);
        assert_eq!(p.top_extractor(), Some((ExtractorId(0), 2)));
        assert!((p.top_share() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn top_extractor_tie_prefers_smaller_id() {
        let records = vec![ext(7, 4, 1), ext(7, 2, 2)];
        let (index, _) = SupportIndex::build(&records, &MrConfig::sequential());
        let p = index.get(&records[0].triple).unwrap();
        assert_eq!(p.top_extractor(), Some((ExtractorId(2), 1)));
        assert_eq!(p.top_share(), 0.5);
    }

    #[test]
    fn build_is_identical_across_engine_configurations() {
        let records: Vec<Extraction> = (0..3_000)
            .map(|i| ext(i % 40, (i % 7) as u16, i % 180))
            .collect();
        let (base, base_stats) = SupportIndex::build(&records, &MrConfig::sequential());
        for mr in [
            MrConfig::with_workers(4),
            MrConfig::with_workers(4).with_chunk_records(256),
            MrConfig::with_workers(4)
                .with_chunk_records(128)
                .with_spill_threshold(512),
        ] {
            let (other, stats) = SupportIndex::build(&records, &mr);
            assert_eq!(base.map, other.map, "mr {mr:?}");
            if mr.spill_threshold_records > 0 {
                assert!(stats.spilled_bytes > 0, "spill path not exercised");
                assert!(stats.peak_grouped_records <= base_stats.peak_grouped_records);
            }
        }
    }

    #[test]
    fn empty_profile_edge_cases() {
        let p = SupportProfile::default();
        assert_eq!(p.top_extractor(), None);
        assert_eq!(p.top_share(), 0.0);
        let (index, _) = SupportIndex::build(&[], &MrConfig::sequential());
        assert!(index.is_empty());
    }
}
