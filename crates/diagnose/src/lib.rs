//! # kf-diagnose — the automated error taxonomy (Fig. 17)
//!
//! The paper's error analysis is what turns knowledge fusion from a
//! scorer into a *debugger*: instead of only reporting that x% of
//! high-confidence triples are labelled false, it classifies those false
//! positives into actionable buckets — values that are merely *too
//! general* (fix: hierarchy-aware matching), gold-list artifacts of the
//! local closed-world assumption (fix: nothing, the triple is fine),
//! systematic extraction breakages (fix: that extractor's pattern), and
//! entity/triple-linkage mistakes (fix: the linkage tools). This crate
//! reproduces that analysis automatically, with per-extractor
//! attribution:
//!
//! 1. [`SupportIndex::build`] derives each unique triple's support shape
//!    (distinct pages per extractor) from the raw extraction batch — one
//!    MapReduce job on the `kf-mapreduce` engine, inheriting its
//!    chunked/spill residency envelope.
//! 2. [`Diagnoser::run`] classifies every labelled false positive in the
//!    configured high-confidence bands with the heuristic rules of
//!    [`classify::classify`] (a second MapReduce job), and aggregates
//!    error mass per confidence band, per predicate, per extractor and
//!    per support spread into a [`TaxonomyReport`].
//! 3. Because the synthetic corpus tags each extraction with its
//!    generator-truth `ExtractionOutcome` (`kf-synth` exposes the join
//!    as `Corpus::taxonomy_truth`), the heuristic attribution is
//!    *measured*: the report carries the heuristic-vs-injected confusion
//!    matrix, and a CI gate keeps attribution accuracy on injected
//!    systematic/generalized errors at ≥ 90%.
//!
//! ```
//! use kf_core::{Fuser, FusionConfig};
//! use kf_diagnose::{Diagnoser, SupportIndex};
//! use kf_mapreduce::MrConfig;
//! use kf_synth::{Corpus, SynthConfig};
//!
//! let corpus = Corpus::generate(&SynthConfig::tiny(), 42);
//! let (output, attribution) =
//!     Fuser::new(FusionConfig::popaccu()).run_with_attribution(&corpus.batch, None);
//! let (support, _) = SupportIndex::build(&corpus.batch.records, &MrConfig::default());
//! let truth = corpus.taxonomy_truth();
//! let (report, _stats) = Diagnoser::new(&corpus.gold, &corpus.world, &support)
//!     .with_truth(&truth)
//!     .with_attribution(&attribution)
//!     .run(&output);
//! // The categories partition the high-band false positives exactly.
//! for band in &report.bands {
//!     assert_eq!(band.counts.total(), band.n_labelled - band.n_true);
//! }
//! ```

pub mod classify;
pub mod support;

pub use classify::{classify, ClassifierThresholds};
pub use support::{SupportIndex, SupportProfile};

use kf_core::{FusionOutput, ProvenanceAttribution};
use kf_mapreduce::{map_reduce_with_stats, Emitter, JobStats, MrConfig};
use kf_types::{
    BandBreakdown, CategoryAccuracy, CategoryCounts, ConfusionCell, ErrorCategory, FxHashMap,
    GoldStandard, GroupBreakdown, ScenarioPhenomenon, Spread, TaxonomyReport, Triple,
    ValueHierarchy,
};

/// Configuration of the diagnosis pass.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagnoseConfig {
    /// Ascending lower edges of the confidence bands to diagnose; band
    /// `i` covers `[edges[i], edges[i + 1])` and the last band is closed
    /// at 1.0. Triples below `edges[0]` are out of scope — the paper
    /// analyses false positives *above the acceptance threshold* (§3.2.2
    /// trusts triples with probability over 0.5 and Fig. 17 splits them
    /// into bands). Defaults to `[0.5, 0.8, 0.9]`.
    pub band_edges: Vec<f64>,
    /// Classifier thresholds (rules 2 and 3).
    pub thresholds: ClassifierThresholds,
    /// Engine configuration for the classification job.
    pub mr: MrConfig,
}

impl Default for DiagnoseConfig {
    fn default() -> Self {
        DiagnoseConfig {
            band_edges: vec![0.5, 0.8, 0.9],
            thresholds: ClassifierThresholds::default(),
            mr: MrConfig::default(),
        }
    }
}

/// Classifies a fusion output's high-confidence false positives into the
/// Fig. 17 taxonomy. Borrow-based builder: construct with the required
/// context, chain the optional joins, then [`Diagnoser::run`].
#[derive(Debug, Clone)]
pub struct Diagnoser<'a, H: ValueHierarchy + Sync> {
    gold: &'a GoldStandard,
    hierarchy: &'a H,
    support: &'a SupportIndex,
    truth: Option<&'a FxHashMap<Triple, ErrorCategory>>,
    scenario: Option<&'a FxHashMap<Triple, ScenarioPhenomenon>>,
    attribution: Option<&'a ProvenanceAttribution>,
    extractor_labels: &'a [String],
    cfg: DiagnoseConfig,
}

// Shuffle key of the classification job: (dimension, key-within-
// dimension, category-or-tag). One reducer call per taxonomy cell.
type TaxKey = (u8, u32, u8);
// Shuffle value: (count, accuracy mass).
type TaxVal = (u64, f64);

/// Band stat rows (`DIM_BAND_STAT`): labelled / true counters.
const DIM_BAND_STAT: u8 = 0;
const TAG_LABELLED: u8 = 0;
const TAG_TRUE: u8 = 1;
/// False positives per (band, category).
const DIM_BAND_CAT: u8 = 1;
/// False positives per (predicate, category).
const DIM_PREDICATE: u8 = 2;
/// False positives per (supporting extractor, category).
const DIM_EXTRACTOR: u8 = 3;
/// False positives per (support spread class, category).
const DIM_SPREAD: u8 = 4;
/// Confusion cells: key = injected category, tag = heuristic category.
const DIM_CONFUSION: u8 = 5;
/// Mean-provenance-accuracy mass per heuristic category.
const DIM_ACCURACY: u8 = 6;
/// False positives per (injected hostile-scenario phenomenon, category).
const DIM_SCENARIO: u8 = 7;

impl<'a, H: ValueHierarchy + Sync> Diagnoser<'a, H> {
    /// A diagnoser over the required context: the gold standard the
    /// output was labelled against, the value-hierarchy ontology, and the
    /// batch's [`SupportIndex`].
    pub fn new(gold: &'a GoldStandard, hierarchy: &'a H, support: &'a SupportIndex) -> Self {
        Diagnoser {
            gold,
            hierarchy,
            support,
            truth: None,
            scenario: None,
            attribution: None,
            extractor_labels: &[],
            cfg: DiagnoseConfig::default(),
        }
    }

    /// Join against generator-truth categories (from
    /// `kf_synth::Corpus::taxonomy_truth`): fills the confusion matrix
    /// and the attribution-accuracy gates.
    pub fn with_truth(mut self, truth: &'a FxHashMap<Triple, ErrorCategory>) -> Self {
        self.truth = Some(truth);
        self
    }

    /// Join against hostile-scenario ground truth (from
    /// `kf_synth::Corpus::scenario_truth`): each false positive whose
    /// triple was injected by a scenario (copying, spam, drift, hard
    /// linkage) lands in the report's per-phenomenon breakdown, so the
    /// damage each hostile mechanism does is *measured* against the
    /// generator's own record of what it injected.
    pub fn with_scenario(mut self, scenario: &'a FxHashMap<Triple, ScenarioPhenomenon>) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Join against the fusion run's provenance attribution: adds the
    /// mean final learned accuracy of each category's supporting
    /// provenances (systematic errors ride on provenances the fusion
    /// *trusts* — that is why they calibrate badly).
    pub fn with_attribution(mut self, attribution: &'a ProvenanceAttribution) -> Self {
        self.attribution = Some(attribution);
        self
    }

    /// Human-readable extractor names (indexed by extractor id) for the
    /// per-extractor breakdown; unnamed ids render as `extractor_<id>`.
    pub fn with_extractor_labels(mut self, labels: &'a [String]) -> Self {
        self.extractor_labels = labels;
        self
    }

    /// Replace the configuration (bands, thresholds, engine knobs).
    pub fn with_config(mut self, cfg: DiagnoseConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Classify `output`'s high-band false positives and assemble the
    /// taxonomy. Runs as one MapReduce job on the configured engine;
    /// returns the job's execution counters alongside the report. The
    /// report is deterministic: independent of workers, partitions,
    /// chunking and spilling.
    pub fn run(&self, output: &FusionOutput) -> (TaxonomyReport, JobStats) {
        // Sanitised ascending band edges (callers constructing configs by
        // hand may pass unsorted or empty edges).
        let mut edges: Vec<f64> = self
            .cfg
            .band_edges
            .iter()
            .copied()
            .filter(|e| e.is_finite())
            .collect();
        edges.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite edges"));
        edges.dedup();
        if edges.is_empty() {
            edges.push(0.0);
        }

        let indices: Vec<usize> = (0..output.scored.len()).collect();
        let edges_ref = &edges;
        let (cells, stats) = map_reduce_with_stats(
            &self.cfg.mr,
            &indices,
            |&i, emit: &mut Emitter<TaxKey, TaxVal>| self.map_one(output, edges_ref, i, emit),
            // Values arrive in input order (engine guarantee), so the f64
            // accuracy mass sums deterministically.
            |key, values| {
                let mut count = 0u64;
                let mut mass = 0.0f64;
                for (c, m) in values {
                    count += c;
                    mass += m;
                }
                vec![(*key, (count, mass))]
            },
        );
        (self.assemble(&edges, cells), stats)
    }

    /// Mapper: classify scored triple `i` and emit its taxonomy cells.
    fn map_one(
        &self,
        output: &FusionOutput,
        edges: &[f64],
        i: usize,
        emit: &mut Emitter<TaxKey, TaxVal>,
    ) {
        let s = &output.scored[i];
        let Some(p) = s.probability else { return };
        // Non-finite probabilities (a hand-built FusionOutput; fusion
        // never produces them) cannot be banded — out of scope, like
        // sub-threshold triples.
        if !p.is_finite() || p < edges[0] {
            return;
        }
        let band = (edges.iter().take_while(|&&e| p >= e).count() - 1) as u32;
        let label = self.gold.label(&s.triple);
        let Some(is_true) = label.as_bool() else {
            return;
        };
        emit.emit((DIM_BAND_STAT, band, TAG_LABELLED), (1, 0.0));
        if is_true {
            emit.emit((DIM_BAND_STAT, band, TAG_TRUE), (1, 0.0));
            return;
        }

        // A labelled-false triple: classify it.
        let gold_values = self.gold.values(&s.triple.data_item()).unwrap_or(&[]);
        let profile = self.support.get(&s.triple);
        let cat = classify(
            &s.triple,
            gold_values,
            profile,
            self.hierarchy,
            &self.cfg.thresholds,
        );
        let cat_tag = cat.index() as u8;
        emit.emit((DIM_BAND_CAT, band, cat_tag), (1, 0.0));
        emit.emit((DIM_PREDICATE, s.triple.predicate.raw(), cat_tag), (1, 0.0));
        let spread = Spread::of(s.n_extractors, s.n_pages);
        emit.emit((DIM_SPREAD, spread as u32, cat_tag), (1, 0.0));
        if let Some(p) = profile {
            for &(ext, _) in &p.per_extractor {
                emit.emit((DIM_EXTRACTOR, ext.raw() as u32, cat_tag), (1, 0.0));
            }
        }
        if let Some(truth) = self.truth {
            if let Some(&injected) = truth.get(&s.triple) {
                emit.emit((DIM_CONFUSION, injected.index() as u32, cat_tag), (1, 0.0));
            }
        }
        if let Some(scenario) = self.scenario {
            if let Some(&phenomenon) = scenario.get(&s.triple) {
                emit.emit((DIM_SCENARIO, phenomenon.index() as u32, cat_tag), (1, 0.0));
            }
        }
        if let Some(attribution) = self.attribution {
            if let Some(mean) = attribution.mean_accuracy(i) {
                emit.emit((DIM_ACCURACY, cat.index() as u32, 0), (1, mean));
            }
        }
    }

    /// Assemble the reduced cells into a [`TaxonomyReport`]. Cells are
    /// re-sorted globally so the report does not depend on the engine's
    /// partition layout.
    fn assemble(&self, edges: &[f64], mut cells: Vec<(TaxKey, TaxVal)>) -> TaxonomyReport {
        cells.sort_unstable_by_key(|&(key, _)| key);

        let mut bands: Vec<BandBreakdown> = edges
            .iter()
            .enumerate()
            .map(|(i, &lo)| BandBreakdown {
                lo,
                hi: edges.get(i + 1).copied().unwrap_or(1.0),
                n_labelled: 0,
                n_true: 0,
                counts: CategoryCounts::default(),
            })
            .collect();
        let mut predicates: Vec<GroupBreakdown> = Vec::new();
        let mut extractors: Vec<GroupBreakdown> = Vec::new();
        let mut spread: Vec<GroupBreakdown> = Vec::new();
        let mut scenarios: Vec<GroupBreakdown> = Vec::new();
        let mut confusion: Vec<ConfusionCell> = Vec::new();
        let mut accuracy_mass = [(0u64, 0.0f64); ErrorCategory::COUNT];

        // Cells arrive sorted by (dim, key, tag): group rows append in
        // order within each dimension.
        fn group_slot(
            groups: &mut Vec<GroupBreakdown>,
            key: u32,
            label: String,
        ) -> &mut GroupBreakdown {
            if groups.last().map(|g| g.key) != Some(key) {
                groups.push(GroupBreakdown {
                    key,
                    label,
                    counts: CategoryCounts::default(),
                });
            }
            groups.last_mut().expect("slot just ensured")
        }

        for ((dim, key, tag), (count, mass)) in cells {
            let cat = ErrorCategory::from_index(tag as usize);
            match dim {
                DIM_BAND_STAT => {
                    let band = &mut bands[key as usize];
                    match tag {
                        TAG_LABELLED => band.n_labelled += count,
                        TAG_TRUE => band.n_true += count,
                        _ => unreachable!("unknown band stat tag {tag}"),
                    }
                }
                DIM_BAND_CAT => {
                    bands[key as usize]
                        .counts
                        .add(cat.expect("category tag"), count);
                }
                DIM_PREDICATE => {
                    group_slot(&mut predicates, key, format!("predicate_{key}"))
                        .counts
                        .add(cat.expect("category tag"), count);
                }
                DIM_EXTRACTOR => {
                    let label = self
                        .extractor_labels
                        .get(key as usize)
                        .cloned()
                        .unwrap_or_else(|| format!("extractor_{key}"));
                    group_slot(&mut extractors, key, label)
                        .counts
                        .add(cat.expect("category tag"), count);
                }
                DIM_SPREAD => {
                    let class = Spread::ALL[key as usize];
                    group_slot(&mut spread, key, class.name().to_string())
                        .counts
                        .add(cat.expect("category tag"), count);
                }
                DIM_SCENARIO => {
                    let phenomenon = ScenarioPhenomenon::from_index(key as usize)
                        .expect("scenario phenomenon key");
                    group_slot(&mut scenarios, key, phenomenon.name().to_string())
                        .counts
                        .add(cat.expect("category tag"), count);
                }
                DIM_CONFUSION => {
                    confusion.push(ConfusionCell {
                        heuristic: cat.expect("category tag"),
                        injected: ErrorCategory::from_index(key as usize)
                            .expect("injected category key"),
                        count,
                    });
                }
                DIM_ACCURACY => {
                    let slot = &mut accuracy_mass[key as usize];
                    slot.0 += count;
                    slot.1 += mass;
                }
                other => unreachable!("unknown taxonomy dimension {other}"),
            }
        }
        confusion.sort_unstable_by_key(|c| (c.heuristic, c.injected));

        let gate = |injected: ErrorCategory| -> Option<CategoryAccuracy> {
            self.truth?;
            let mut acc = CategoryAccuracy::default();
            for cell in &confusion {
                if cell.injected == injected {
                    acc.total += cell.count;
                    if cell.heuristic == injected {
                        acc.correct += cell.count;
                    }
                }
            }
            Some(acc)
        };

        let mean_prov_accuracy: Vec<(ErrorCategory, f64)> = ErrorCategory::ALL
            .into_iter()
            .filter_map(|c| {
                let (n, mass) = accuracy_mass[c.index()];
                (n > 0).then(|| (c, mass / n as f64))
            })
            .collect();

        let n_false_positives = bands.iter().map(|b| b.counts.total()).sum();
        let n_labelled = bands.iter().map(|b| b.n_labelled).sum();
        TaxonomyReport {
            systematic_attribution: gate(ErrorCategory::SystematicExtraction),
            generalized_attribution: gate(ErrorCategory::WrongButGeneral),
            bands,
            predicates,
            extractors,
            spread,
            scenarios,
            confusion,
            mean_prov_accuracy,
            n_false_positives,
            n_labelled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kf_core::{Fuser, FusionConfig};
    use kf_synth::{Corpus, SynthConfig};

    fn diagnose_tiny(seed: u64) -> (Corpus, TaxonomyReport) {
        let corpus = Corpus::generate(&SynthConfig::tiny(), seed);
        let (output, attribution) = Fuser::new(FusionConfig::popaccu().with_workers(2))
            .run_with_attribution(&corpus.batch, None);
        let (support, _) = SupportIndex::build(&corpus.batch.records, &MrConfig::with_workers(2));
        let truth = corpus.taxonomy_truth();
        let labels: Vec<String> = corpus.extractors.iter().map(|e| e.name.clone()).collect();
        let (report, _) = Diagnoser::new(&corpus.gold, &corpus.world, &support)
            .with_truth(&truth)
            .with_attribution(&attribution)
            .with_extractor_labels(&labels)
            .run(&output);
        (corpus, report)
    }

    #[test]
    fn bands_partition_false_positives_and_match_a_direct_count() {
        let corpus = Corpus::generate(&SynthConfig::tiny(), 3);
        let output = Fuser::new(FusionConfig::popaccu().with_workers(2)).run(&corpus.batch, None);
        let (support, _) = SupportIndex::build(&corpus.batch.records, &MrConfig::with_workers(2));
        let cfg = DiagnoseConfig {
            band_edges: vec![0.8, 0.9],
            ..Default::default()
        };
        let (report, _) = Diagnoser::new(&corpus.gold, &corpus.world, &support)
            .with_config(cfg)
            .run(&output);

        // Independent sequential count of labelled/true per band.
        let edges = [0.8, 0.9];
        let mut labelled = [0u64; 2];
        let mut true_count = [0u64; 2];
        for s in &output.scored {
            let Some(p) = s.probability else { continue };
            if p < edges[0] {
                continue;
            }
            let band = if p >= edges[1] { 1 } else { 0 };
            if let Some(t) = corpus.gold.label(&s.triple).as_bool() {
                labelled[band] += 1;
                true_count[band] += t as u64;
            }
        }
        assert_eq!(report.bands.len(), 2);
        for (i, band) in report.bands.iter().enumerate() {
            assert_eq!(band.n_labelled, labelled[i], "band {i} labelled");
            assert_eq!(band.n_true, true_count[i], "band {i} true");
            assert_eq!(
                band.counts.total(),
                band.n_labelled - band.n_true,
                "band {i} categories must partition its false positives"
            );
        }
        assert!(report.n_false_positives > 0, "no FPs diagnosed");
    }

    #[test]
    fn confusion_matrix_covers_every_false_positive() {
        let (_, report) = diagnose_tiny(7);
        let confusion_total: u64 = report.confusion.iter().map(|c| c.count).sum();
        assert_eq!(confusion_total, report.n_false_positives);
        // The gates exist when truth is provided.
        assert!(report.systematic_attribution.is_some());
        assert!(report.generalized_attribution.is_some());
        // Mean provenance accuracies are probabilities.
        for &(_, acc) in &report.mean_prov_accuracy {
            assert!((0.0..=1.0).contains(&acc), "accuracy {acc}");
        }
    }

    #[test]
    fn secondary_dimensions_conserve_mass() {
        let (_, report) = diagnose_tiny(11);
        let band_total = report.n_false_positives;
        let pred_total: u64 = report.predicates.iter().map(|g| g.counts.total()).sum();
        let spread_total: u64 = report.spread.iter().map(|g| g.counts.total()).sum();
        assert_eq!(pred_total, band_total, "predicate mass");
        assert_eq!(spread_total, band_total, "spread mass");
        // Extractor mass can exceed the FP count (a triple counts toward
        // every supporting extractor) but never undershoots it.
        let ext_total: u64 = report.extractors.iter().map(|g| g.counts.total()).sum();
        assert!(ext_total >= band_total, "extractor mass {ext_total}");
        // Extractor labels resolve through the provided names.
        assert!(report.extractors.iter().all(|g| !g.label.is_empty()));
    }

    #[test]
    fn report_is_independent_of_engine_configuration() {
        let corpus = Corpus::generate(&SynthConfig::tiny(), 5);
        let output = Fuser::new(FusionConfig::popaccu().with_workers(2)).run(&corpus.batch, None);
        let (support, _) = SupportIndex::build(&corpus.batch.records, &MrConfig::with_workers(2));
        let truth = corpus.taxonomy_truth();
        let run = |mr: MrConfig| {
            let cfg = DiagnoseConfig {
                mr,
                ..Default::default()
            };
            Diagnoser::new(&corpus.gold, &corpus.world, &support)
                .with_truth(&truth)
                .with_config(cfg)
                .run(&output)
                .0
        };
        let base = run(MrConfig::sequential());
        for mr in [
            MrConfig::with_workers(8),
            MrConfig::with_workers(3).with_chunk_records(64),
            MrConfig::with_workers(2)
                .with_chunk_records(32)
                .with_spill_threshold(64),
        ] {
            assert_eq!(base, run(mr));
        }
    }

    #[test]
    fn empty_output_yields_empty_report() {
        let corpus = Corpus::generate(&SynthConfig::tiny(), 2);
        let (support, _) = SupportIndex::build(&[], &MrConfig::sequential());
        let output = Fuser::new(FusionConfig::vote()).run(&kf_types::ExtractionBatch::new(), None);
        let (report, _) = Diagnoser::new(&corpus.gold, &corpus.world, &support).run(&output);
        assert_eq!(report.n_false_positives, 0);
        assert_eq!(report.n_labelled, 0);
        assert!(report.predicates.is_empty());
        assert!(report.confusion.is_empty());
    }

    #[test]
    fn non_finite_probabilities_are_skipped_not_banded() {
        // All ScoredTriple fields are public, so a hand-built output can
        // carry a NaN probability; it must fall out of scope instead of
        // underflowing the band index.
        let corpus = Corpus::generate(&SynthConfig::tiny(), 4);
        let (support, _) = SupportIndex::build(&corpus.batch.records, &MrConfig::sequential());
        let mut output =
            Fuser::new(FusionConfig::popaccu().with_workers(2)).run(&corpus.batch, None);
        let (finite, _) = Diagnoser::new(&corpus.gold, &corpus.world, &support).run(&output);
        output.scored[0].probability = Some(f64::NAN);
        output.scored[1].probability = Some(f64::INFINITY);
        let (report, _) = Diagnoser::new(&corpus.gold, &corpus.world, &support).run(&output);
        // The two poisoned rows contribute nothing; everything else is
        // unchanged, so the labelled mass drops by at most 2.
        assert!(report.n_labelled + 2 >= finite.n_labelled);
        for band in &report.bands {
            assert_eq!(band.counts.total(), band.n_labelled - band.n_true);
        }
    }

    #[test]
    fn band_edges_are_sanitised() {
        let corpus = Corpus::generate(&SynthConfig::tiny(), 2);
        let output = Fuser::new(FusionConfig::popaccu().with_workers(2)).run(&corpus.batch, None);
        let (support, _) = SupportIndex::build(&corpus.batch.records, &MrConfig::with_workers(2));
        // Unsorted, duplicated, non-finite edges must not panic.
        let cfg = DiagnoseConfig {
            band_edges: vec![0.9, f64::NAN, 0.5, 0.9],
            ..Default::default()
        };
        let (report, _) = Diagnoser::new(&corpus.gold, &corpus.world, &support)
            .with_config(cfg)
            .run(&output);
        assert_eq!(report.bands.len(), 2);
        assert_eq!(report.bands[0].lo, 0.5);
        assert_eq!(report.bands[1].lo, 0.9);
        // Empty edges degrade to a single all-covering band.
        let cfg = DiagnoseConfig {
            band_edges: vec![],
            ..Default::default()
        };
        let (report, _) = Diagnoser::new(&corpus.gold, &corpus.world, &support)
            .with_config(cfg)
            .run(&output);
        assert_eq!(report.bands.len(), 1);
        assert_eq!(report.bands[0].lo, 0.0);
    }
}
