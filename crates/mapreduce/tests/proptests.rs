//! Property-based tests for the MapReduce engine: the parallel execution
//! must be observationally equivalent to a sequential group-by, for any
//! input and any worker/partition configuration.

use kf_mapreduce::{map_reduce, Emitter, MrConfig, Reservoir};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Sequential reference implementation of sum-by-key.
fn reference_sum(pairs: &[(u16, u32)]) -> BTreeMap<u16, u64> {
    let mut m = BTreeMap::new();
    for &(k, v) in pairs {
        *m.entry(k).or_insert(0u64) += v as u64;
    }
    m
}

proptest! {
    /// map_reduce(sum) == sequential group-by sum, for any worker count.
    #[test]
    fn equivalent_to_sequential_groupby(
        pairs in prop::collection::vec((any::<u16>(), 0u32..1000), 0..300),
        workers in 1usize..9,
        partitions in 1usize..17,
        chunk_records in 0usize..65,
    ) {
        let cfg = MrConfig { workers, partitions, chunk_records, ..MrConfig::default() };
        let out: Vec<(u16, u64)> = map_reduce(
            &cfg,
            &pairs,
            |&(k, v), emit: &mut Emitter<u16, u32>| emit.emit(k, v),
            |k, vs| vec![(*k, vs.iter().map(|&v| v as u64).sum())],
        );
        let got: BTreeMap<u16, u64> = out.into_iter().collect();
        prop_assert_eq!(got, reference_sum(&pairs));
    }

    /// No records are lost or duplicated through the shuffle.
    #[test]
    fn conservation_of_records(
        keys in prop::collection::vec(any::<u8>(), 1..500),
        workers in 1usize..9,
    ) {
        let cfg = MrConfig::with_workers(workers);
        let out: Vec<usize> = map_reduce(
            &cfg,
            &keys,
            |&k, emit: &mut Emitter<u8, ()>| emit.emit(k, ()),
            |_k, vs| vec![vs.len()],
        );
        prop_assert_eq!(out.iter().sum::<usize>(), keys.len());
    }

    /// Output is identical across two runs with different worker counts.
    #[test]
    fn worker_count_does_not_change_output(
        pairs in prop::collection::vec((any::<u16>(), any::<u32>()), 0..200),
    ) {
        let run = |workers| {
            map_reduce(
                &MrConfig::with_workers(workers),
                &pairs,
                |&(k, v), emit: &mut Emitter<u16, u32>| emit.emit(k, v),
                |k, vs| vec![(*k, vs.len(), vs.iter().map(|&v| v as u64).sum::<u64>())],
            )
        };
        let mut a = run(1);
        let mut b = run(7);
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// The chunked shuffle is observationally identical to the unchunked
    /// one — not just as a multiset: the partition-then-sorted-key output
    /// order matches exactly, for any chunk quota.
    #[test]
    fn chunked_shuffle_matches_unchunked_exactly(
        pairs in prop::collection::vec((any::<u16>(), any::<u32>()), 0..400),
        workers in 1usize..9,
        partitions in 1usize..17,
        chunk_records in 1usize..130,
    ) {
        let base = MrConfig { workers, partitions, chunk_records: 0, ..MrConfig::default() };
        let run = |cfg: &MrConfig| {
            map_reduce(
                cfg,
                &pairs,
                |&(k, v), emit: &mut Emitter<u16, u32>| emit.emit(k, v),
                // Keep the raw value list so per-key value *order* is
                // compared too, not only aggregates.
                |k, vs| vec![(*k, vs)],
            )
        };
        let unchunked = run(&base);
        let chunked = run(&MrConfig { chunk_records, ..base });
        prop_assert_eq!(unchunked, chunked);
    }

    /// Chunking never raises the raw-residency peak above the unchunked
    /// baseline, and the peak respects the quota when fan-out is 1.
    #[test]
    fn chunked_peak_is_bounded(
        n in 1usize..500,
        workers in 1usize..5,
        chunk_records in 1usize..100,
    ) {
        let inputs: Vec<u32> = (0..n as u32).collect();
        let (_, stats) = kf_mapreduce::map_reduce_with_stats(
            &MrConfig::with_workers(workers).with_chunk_records(chunk_records),
            &inputs,
            |&x, emit: &mut Emitter<u32, u32>| emit.emit(x % 7, x),
            |k, vs| vec![(*k, vs.len())],
        );
        prop_assert_eq!(stats.map_output, n as u64);
        prop_assert!(stats.peak_resident_records <= (chunk_records as u64).min(n as u64));
    }

    /// The external shuffle (spill-to-disk runs, k-way merged) is
    /// observationally identical to the fully in-memory path — exact
    /// output equality including per-key value order and overall order —
    /// for any input, worker/partition layout, chunk quota and spill
    /// threshold.
    #[test]
    fn spilled_output_matches_in_memory_exactly(
        pairs in prop::collection::vec((any::<u16>(), any::<u32>()), 0..400),
        workers in 1usize..9,
        partitions in 1usize..17,
        chunk_records in 0usize..130,
        spill_threshold in 1usize..200,
    ) {
        let base = MrConfig { workers, partitions, ..MrConfig::default() };
        let run = |cfg: &MrConfig| {
            map_reduce(
                cfg,
                &pairs,
                |&(k, v), emit: &mut Emitter<u16, u32>| emit.emit(k, v),
                // Keep the raw value list so per-key value *order* is
                // compared too, not only aggregates.
                |k, vs| vec![(*k, vs)],
            )
        };
        let in_memory = run(&base);
        let spilled = run(&MrConfig {
            chunk_records,
            spill_threshold_records: spill_threshold,
            ..base
        });
        prop_assert_eq!(in_memory, spilled);
    }

    /// Combining (an associative integer-sum fold) composed with spilling
    /// produces exactly the in-memory, uncombined output, and the spilled
    /// run respects the grouped-residency threshold whenever a single
    /// wave fits under it.
    #[test]
    fn combined_and_spilled_sum_matches_in_memory(
        pairs in prop::collection::vec((any::<u8>(), 0u32..1000), 0..400),
        workers in 1usize..6,
        chunk_records in 1usize..50,
        spill_threshold in 1usize..150,
    ) {
        let mapper = |&(k, v): &(u8, u32), emit: &mut Emitter<u8, u64>| {
            emit.emit(k, v as u64);
        };
        let reducer = |k: &u8, vs: Vec<u64>| vec![(*k, vs.iter().sum::<u64>())];
        let in_memory = map_reduce(&MrConfig::with_workers(workers), &pairs, mapper, reducer);
        let cfg = MrConfig::with_workers(workers)
            .with_chunk_records(chunk_records)
            .with_spill_threshold(spill_threshold);
        let (combined, stats) = kf_mapreduce::map_reduce_combined_with_stats(
            &cfg,
            &pairs,
            mapper,
            |vs: &mut Vec<u64>| {
                let sum: u64 = vs.drain(..).sum();
                vs.push(sum);
            },
            reducer,
        );
        prop_assert_eq!(in_memory, combined);
        if chunk_records <= spill_threshold {
            // A wave can overshoot the chunk quota ~2× during the ramp,
            // but the pre-merge spill keeps the grouped residency bounded
            // by threshold + one wave.
            prop_assert!(
                stats.peak_grouped_records <= (spill_threshold + 2 * chunk_records) as u64,
                "grouped peak {} above threshold {} + wave {}",
                stats.peak_grouped_records, spill_threshold, chunk_records
            );
        }
    }

    /// Reservoir sample size == min(capacity, n), and sampled items are a
    /// subset of the offered items.
    #[test]
    fn reservoir_invariants(n in 0usize..2000, cap in 1usize..200, seed in any::<u64>()) {
        let mut r = Reservoir::new(cap, seed);
        r.extend(0..n);
        prop_assert_eq!(r.len(), n.min(cap));
        prop_assert_eq!(r.seen(), n as u64);
        for &x in r.as_slice() {
            prop_assert!(x < n);
        }
    }
}
