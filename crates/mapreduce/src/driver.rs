//! Round iteration with convergence detection.
//!
//! The fusion pipeline alternates Stage I (triple probabilities) and
//! Stage II (provenance accuracies) *"until convergence"*, but §4.1 notes
//! that convergence can take many rounds and **forces termination after
//! `R` rounds (default 5)**; Fig. 14 shows probabilities stabilise after
//! round 2 anyway. The driver encodes exactly that policy.

/// Why iteration stopped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoundOutcome {
    /// The per-round delta fell below the tolerance.
    Converged {
        /// Rounds actually executed.
        rounds: usize,
        /// Final delta.
        delta: f64,
    },
    /// The round budget `R` was exhausted first (the common case at scale).
    ForcedTermination {
        /// Rounds executed (== the budget).
        rounds: usize,
        /// Delta after the final round.
        delta: f64,
    },
}

impl RoundOutcome {
    /// Rounds executed.
    pub fn rounds(&self) -> usize {
        match *self {
            RoundOutcome::Converged { rounds, .. } => rounds,
            RoundOutcome::ForcedTermination { rounds, .. } => rounds,
        }
    }

    /// Final delta.
    pub fn delta(&self) -> f64 {
        match *self {
            RoundOutcome::Converged { delta, .. } => delta,
            RoundOutcome::ForcedTermination { delta, .. } => delta,
        }
    }

    /// True when iteration converged before the budget.
    pub fn converged(&self) -> bool {
        matches!(self, RoundOutcome::Converged { .. })
    }
}

/// Drives an iterative computation: runs `round` up to `max_rounds` times,
/// stopping early when the returned delta drops below `tolerance`.
#[derive(Debug, Clone, Copy)]
pub struct IterativeDriver {
    /// Forced-termination budget (the paper's `R`, default 5).
    pub max_rounds: usize,
    /// Convergence tolerance on the round delta.
    pub tolerance: f64,
}

impl Default for IterativeDriver {
    fn default() -> Self {
        IterativeDriver {
            max_rounds: 5,
            tolerance: 1e-6,
        }
    }
}

impl IterativeDriver {
    /// Driver with a round budget and the default tolerance.
    pub fn with_max_rounds(max_rounds: usize) -> Self {
        IterativeDriver {
            max_rounds,
            ..Default::default()
        }
    }

    /// Run `round(round_index) -> delta` until convergence or budget
    /// exhaustion. The delta of round *i* is any non-negative measure of
    /// how much state changed (the fusion pipeline uses the mean absolute
    /// change in provenance accuracy).
    pub fn run(&self, mut round: impl FnMut(usize) -> f64) -> RoundOutcome {
        let mut delta = f64::INFINITY;
        for i in 0..self.max_rounds {
            delta = round(i);
            debug_assert!(delta >= 0.0, "round delta must be non-negative");
            if delta < self.tolerance {
                return RoundOutcome::Converged {
                    rounds: i + 1,
                    delta,
                };
            }
        }
        RoundOutcome::ForcedTermination {
            rounds: self.max_rounds,
            delta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_decaying_delta() {
        let driver = IterativeDriver {
            max_rounds: 50,
            tolerance: 1e-3,
        };
        let outcome = driver.run(|i| 1.0 / (1 << i) as f64);
        assert!(outcome.converged());
        // 1/2^10 < 1e-3 ⇒ 11 rounds (i = 10).
        assert_eq!(outcome.rounds(), 11);
    }

    #[test]
    fn forced_termination_after_budget() {
        let driver = IterativeDriver::with_max_rounds(5);
        let outcome = driver.run(|_| 1.0);
        assert!(!outcome.converged());
        assert_eq!(outcome.rounds(), 5);
        assert_eq!(outcome.delta(), 1.0);
    }

    #[test]
    fn zero_delta_converges_immediately() {
        let driver = IterativeDriver::default();
        let outcome = driver.run(|_| 0.0);
        assert!(outcome.converged());
        assert_eq!(outcome.rounds(), 1);
    }

    #[test]
    fn rounds_receive_their_index() {
        let mut seen = Vec::new();
        let driver = IterativeDriver::with_max_rounds(3);
        driver.run(|i| {
            seen.push(i);
            1.0
        });
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn default_matches_paper_r5() {
        assert_eq!(IterativeDriver::default().max_rounds, 5);
    }
}
