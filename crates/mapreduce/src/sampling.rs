//! Reservoir sampling for reducer-side work capping.
//!
//! §4.1: *"whenever applicable, we sample L triples (by default L = 1M)
//! each time instead of using all triples for Bayesian analysis or source
//! accuracy evaluation"* — the paper's answer to extreme key skew (a single
//! data item can have 2.7M extractions, a single provenance 50K triples).
//! Fig. 14 shows L = 1K performs as well as L = 1M.
//!
//! The reservoir is Algorithm R with a deterministic per-key RNG seed so
//! fusion runs are reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A fixed-capacity uniform sample over a stream of items.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    items: Vec<T>,
    capacity: usize,
    seen: u64,
    rng: SmallRng,
}

impl<T> Reservoir<T> {
    /// Create a reservoir holding at most `capacity` items, seeded
    /// deterministically (use the record key's hash for per-key stability).
    pub fn new(capacity: usize, seed: u64) -> Self {
        Reservoir {
            items: Vec::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
            seen: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Offer one item to the reservoir.
    pub fn offer(&mut self, item: T) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            // Algorithm R: replace a random slot with probability cap/seen.
            let j = self.rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Offer every item of an iterator.
    pub fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.offer(item);
        }
    }

    /// Total items offered (≥ sample size).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Current sample size.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing has been offered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Borrow the sample.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Consume the reservoir, returning the sample.
    pub fn into_sample(self) -> Vec<T> {
        self.items
    }

    /// Convenience: uniformly sample up to `capacity` items from `items`,
    /// seeded by `seed`. Avoids the copy entirely when no sampling is
    /// needed.
    pub fn sample_vec(items: Vec<T>, capacity: usize, seed: u64) -> Vec<T> {
        if items.len() <= capacity {
            return items;
        }
        let mut r = Reservoir::new(capacity, seed);
        r.extend(items);
        r.into_sample()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_capacity_keeps_everything() {
        let mut r = Reservoir::new(10, 0);
        r.extend(0..5);
        assert_eq!(r.len(), 5);
        assert_eq!(r.seen(), 5);
        let mut sample = r.into_sample();
        sample.sort();
        assert_eq!(sample, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn over_capacity_caps_size() {
        let mut r = Reservoir::new(100, 42);
        r.extend(0..100_000);
        assert_eq!(r.len(), 100);
        assert_eq!(r.seen(), 100_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let sample = |seed| {
            let mut r = Reservoir::new(50, seed);
            r.extend(0..10_000);
            r.into_sample()
        };
        assert_eq!(sample(7), sample(7));
        assert_ne!(sample(7), sample(8));
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        // Offer 0..1000 into a 100-slot reservoir many times; every item
        // should be selected with probability ~0.1.
        let mut hits = vec![0u32; 1000];
        for seed in 0..400 {
            let mut r = Reservoir::new(100, seed);
            r.extend(0..1000u32);
            for &x in r.as_slice() {
                hits[x as usize] += 1;
            }
        }
        // Expected 40 hits each; allow generous tolerance.
        let (lo, hi) = (10, 90);
        let bad = hits.iter().filter(|&&h| h < lo || h > hi).count();
        assert!(bad < 10, "non-uniform sampling: {bad} items out of range");
    }

    #[test]
    fn sample_vec_no_copy_when_small() {
        let v = vec![1, 2, 3];
        assert_eq!(Reservoir::sample_vec(v.clone(), 10, 0), v);
        let big: Vec<u32> = (0..1000).collect();
        assert_eq!(Reservoir::sample_vec(big, 10, 0).len(), 10);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = Reservoir::new(0, 0);
        r.extend(0..10);
        assert_eq!(r.len(), 1);
    }
}
