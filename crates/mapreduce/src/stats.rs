//! Execution counters.

/// Counters for one MapReduce job, in the spirit of Hadoop/MR task counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Input records handed to mappers.
    pub map_input: u64,
    /// Records emitted by mappers (shuffle volume).
    pub map_output: u64,
    /// Distinct keys seen by reducers.
    pub reduce_keys: u64,
    /// Records produced by reducers.
    pub reduce_output: u64,
    /// Peak number of raw (mapper-emitted, not yet grouped) shuffle records
    /// resident in memory at once. Equals `map_output` for an unchunked
    /// shuffle; with [`MrConfig::chunk_records`](crate::MrConfig) set it is
    /// the largest single wave, bounded near the configured quota.
    pub peak_resident_records: u64,
}

impl JobStats {
    /// Stats for a job over `map_input` records, other counters zeroed.
    pub fn new(map_input: u64) -> Self {
        JobStats {
            map_input,
            ..Default::default()
        }
    }

    /// Mapper fan-out ratio (`map_output / map_input`); 0 when no input.
    pub fn fanout(&self) -> f64 {
        if self.map_input == 0 {
            0.0
        } else {
            self.map_output as f64 / self.map_input as f64
        }
    }

    /// Mean records per reduce key; 0 when no keys.
    pub fn mean_group_size(&self) -> f64 {
        if self.reduce_keys == 0 {
            0.0
        } else {
            self.map_output as f64 / self.reduce_keys as f64
        }
    }

    /// Merge counters from another job (for multi-stage pipelines).
    /// Volume counters add; the residency peak takes the max, because the
    /// stages of a pipeline run one after another.
    pub fn merge(&mut self, other: &JobStats) {
        self.map_input += other.map_input;
        self.map_output += other.map_output;
        self.reduce_keys += other.reduce_keys;
        self.reduce_output += other.reduce_output;
        self.peak_resident_records = self.peak_resident_records.max(other.peak_resident_records);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = JobStats {
            map_input: 10,
            map_output: 30,
            reduce_keys: 6,
            reduce_output: 6,
            peak_resident_records: 30,
        };
        assert!((s.fanout() - 3.0).abs() < 1e-12);
        assert!((s.mean_group_size() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let s = JobStats::default();
        assert_eq!(s.fanout(), 0.0);
        assert_eq!(s.mean_group_size(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = JobStats::new(5);
        a.merge(&JobStats {
            map_input: 10,
            map_output: 20,
            reduce_keys: 2,
            reduce_output: 4,
            peak_resident_records: 20,
        });
        assert_eq!(a.map_input, 15);
        assert_eq!(a.map_output, 20);
        assert_eq!(a.reduce_keys, 2);
        assert_eq!(a.reduce_output, 4);
        assert_eq!(a.peak_resident_records, 20);
    }

    #[test]
    fn merge_takes_peak_maximum() {
        // Stages run sequentially: the pipeline's peak residency is the
        // worst stage, not the sum of stages.
        let mut a = JobStats {
            peak_resident_records: 50,
            ..JobStats::new(5)
        };
        a.merge(&JobStats {
            peak_resident_records: 30,
            ..Default::default()
        });
        assert_eq!(a.peak_resident_records, 50);
        a.merge(&JobStats {
            peak_resident_records: 80,
            ..Default::default()
        });
        assert_eq!(a.peak_resident_records, 80);
    }
}
