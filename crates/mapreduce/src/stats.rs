//! Execution counters.

/// Counters for one MapReduce job, in the spirit of Hadoop/MR task counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Input records handed to mappers.
    pub map_input: u64,
    /// Records emitted by mappers (shuffle volume).
    pub map_output: u64,
    /// Distinct keys seen by reducers.
    pub reduce_keys: u64,
    /// Records produced by reducers.
    pub reduce_output: u64,
    /// Peak number of raw (mapper-emitted, not yet grouped) shuffle records
    /// resident in memory at once. Equals `map_output` for an unchunked
    /// shuffle; with [`MrConfig::chunk_records`](crate::MrConfig) set it is
    /// the largest single wave, bounded near the configured quota.
    pub peak_resident_records: u64,
    /// Peak number of *grouped* records resident across all partition
    /// accumulators at once. Equals `map_output` when nothing spills
    /// (every grouped value waits in memory for its reducer); with
    /// [`MrConfig::spill_threshold_records`](crate::MrConfig) set it
    /// stays at or under the threshold as long as a single wave fits it.
    /// A [`Combiner`](crate::Combiner) lowers it further by folding
    /// group buffers while the shuffle runs.
    pub peak_grouped_records: u64,
    /// Total bytes written to spill run files (frames plus their length
    /// prefixes); `0` when the job never spilled.
    pub spilled_bytes: u64,
    /// Sorted run files written by the external shuffle (mid-wave spills
    /// plus end-of-job tail flushes); `0` when the job never spilled.
    /// Compaction re-merges of existing runs do not count — like
    /// `spilled_bytes`, this counts shuffle output leaving memory.
    pub spill_runs: u64,
    /// Times a [`Combiner`](crate::Combiner) folded a group buffer —
    /// during wave merges, while spilling, or in compaction. `0` when the
    /// job has no combiner. Deterministic for a fixed input and config.
    pub combiner_invocations: u64,
}

impl JobStats {
    /// Stats for a job over `map_input` records, other counters zeroed.
    pub fn new(map_input: u64) -> Self {
        JobStats {
            map_input,
            ..Default::default()
        }
    }

    /// Mapper fan-out ratio (`map_output / map_input`); 0 when no input.
    pub fn fanout(&self) -> f64 {
        if self.map_input == 0 {
            0.0
        } else {
            self.map_output as f64 / self.map_input as f64
        }
    }

    /// Mean records per reduce key; 0 when no keys.
    pub fn mean_group_size(&self) -> f64 {
        if self.reduce_keys == 0 {
            0.0
        } else {
            self.map_output as f64 / self.reduce_keys as f64
        }
    }

    /// Merge counters from another job (for multi-stage pipelines).
    /// Volume counters (including spilled bytes) add; the residency peaks
    /// take the max, because the stages of a pipeline run one after
    /// another.
    pub fn merge(&mut self, other: &JobStats) {
        self.map_input += other.map_input;
        self.map_output += other.map_output;
        self.reduce_keys += other.reduce_keys;
        self.reduce_output += other.reduce_output;
        self.peak_resident_records = self.peak_resident_records.max(other.peak_resident_records);
        self.peak_grouped_records = self.peak_grouped_records.max(other.peak_grouped_records);
        self.spilled_bytes += other.spilled_bytes;
        self.spill_runs += other.spill_runs;
        self.combiner_invocations += other.combiner_invocations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = JobStats {
            map_input: 10,
            map_output: 30,
            reduce_keys: 6,
            reduce_output: 6,
            peak_resident_records: 30,
            ..Default::default()
        };
        assert!((s.fanout() - 3.0).abs() < 1e-12);
        assert!((s.mean_group_size() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let s = JobStats::default();
        assert_eq!(s.fanout(), 0.0);
        assert_eq!(s.mean_group_size(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = JobStats::new(5);
        a.merge(&JobStats {
            map_input: 10,
            map_output: 20,
            reduce_keys: 2,
            reduce_output: 4,
            peak_resident_records: 20,
            peak_grouped_records: 15,
            spilled_bytes: 1_000,
            spill_runs: 3,
            combiner_invocations: 7,
        });
        assert_eq!(a.map_input, 15);
        assert_eq!(a.map_output, 20);
        assert_eq!(a.reduce_keys, 2);
        assert_eq!(a.reduce_output, 4);
        assert_eq!(a.peak_resident_records, 20);
        assert_eq!(a.peak_grouped_records, 15);
        assert_eq!(a.spilled_bytes, 1_000);
        assert_eq!(a.spill_runs, 3);
        assert_eq!(a.combiner_invocations, 7);
    }

    #[test]
    fn merge_takes_peak_maximum_and_adds_spill() {
        // Stages run sequentially: the pipeline's peak residency is the
        // worst stage, not the sum of stages — but spilled bytes are real
        // I/O volume and accumulate.
        let mut a = JobStats {
            peak_resident_records: 50,
            peak_grouped_records: 40,
            spilled_bytes: 100,
            ..JobStats::new(5)
        };
        a.merge(&JobStats {
            peak_resident_records: 30,
            peak_grouped_records: 60,
            spilled_bytes: 50,
            ..Default::default()
        });
        assert_eq!(a.peak_resident_records, 50);
        assert_eq!(a.peak_grouped_records, 60);
        assert_eq!(a.spilled_bytes, 150);
        a.merge(&JobStats {
            peak_resident_records: 80,
            ..Default::default()
        });
        assert_eq!(a.peak_resident_records, 80);
        assert_eq!(a.peak_grouped_records, 60);
        assert_eq!(a.spilled_bytes, 150);
    }
}
