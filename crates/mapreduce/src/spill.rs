//! Disk-backed shuffle partitions: sorted run files and their k-way merge.
//!
//! When [`MrConfig::spill_threshold_records`](crate::MrConfig) is set and
//! the grouped records resident across all partitions would cross it, the
//! engine serializes every non-empty partition accumulator to a **run
//! file** and frees the memory. A run holds one partition's groups,
//! sorted by key, encoded with [`kf_types::KvCodec`]:
//!
//! ```text
//! run file := frame*
//! frame    := u64 LE byte-length, then that many bytes:
//!             KvCodec(key) ++ KvCodec(Vec<value>)
//! ```
//!
//! The frame prefix lets the reader pull one group at a time into a
//! reusable buffer, so merging R runs holds at most R groups in memory
//! (plus the one being reduced). At reduce time the runs of a partition
//! are merged k-way: runs are individually key-sorted, and within a key,
//! earlier runs hold earlier input — so visiting runs in spill order
//! reconstructs exactly the sorted-key, input-ordered view the in-memory
//! path produces. Output is byte-identical either way.
//!
//! All spill files live in one job-scoped temp directory ([`SpillDir`])
//! that is removed on drop — including the unwind when a mapper or
//! reducer panics mid-job.

use kf_types::KvCodec;
use std::fs::File;
use std::io::{BufReader, BufWriter, ErrorKind, Read, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A job-scoped spill directory, deleted (recursively) on drop.
///
/// The directory name embeds the process id and a process-global sequence
/// number, so concurrent jobs — and concurrent processes sharing a temp
/// dir — never collide.
pub(crate) struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    /// Create a fresh spill directory under `base` (the OS temp dir when
    /// `None` — see [`MrConfig::spill_dir`](crate::MrConfig)).
    pub(crate) fn create(base: Option<&str>) -> SpillDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let base = base.map_or_else(std::env::temp_dir, PathBuf::from);
        let path = base.join(format!(
            "kf-mr-spill-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path)
            .unwrap_or_else(|e| panic!("cannot create spill dir {}: {e}", path.display()));
        SpillDir { path }
    }

    /// Path for the next run file of `partition`.
    pub(crate) fn run_path(&self, partition: usize, seq: usize) -> PathBuf {
        self.path.join(format!("p{partition}-run{seq}.bin"))
    }

    #[cfg(test)]
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        // Best effort: a failure to clean the temp dir must not turn a
        // successful job (or an already-unwinding panic) into an abort.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Append one `(key, values)` frame to an open run writer. Returns the
/// bytes written (frame plus its length prefix).
fn write_group<K: KvCodec, V: KvCodec>(
    writer: &mut BufWriter<File>,
    frame: &mut Vec<u8>,
    path: &Path,
    key: &K,
    values: &Vec<V>,
) -> u64 {
    frame.clear();
    key.encode(frame);
    values.encode(frame);
    let err = |e| panic!("cannot write spill run {}: {e}", path.display());
    writer
        .write_all(&(frame.len() as u64).to_le_bytes())
        .unwrap_or_else(err);
    writer.write_all(frame).unwrap_or_else(err);
    8 + frame.len() as u64
}

/// Write one partition's accumulated groups to a sorted run file.
///
/// `groups` must already be sorted by key. Returns the number of bytes
/// written (frames plus their length prefixes). Goes through the shared
/// [`kf_types::checkpoint::write_atomic`] helper (temp file + rename), so
/// a process killed mid-spill never leaves a truncated run under the run
/// path — the k-way merge either sees a complete run or no file at all.
pub(crate) fn write_run<K: KvCodec, V: KvCodec>(path: &Path, groups: &[(K, Vec<V>)]) -> u64 {
    kf_types::checkpoint::write_atomic(path, |writer| {
        let mut frame = Vec::new();
        let mut bytes = 0u64;
        for (key, values) in groups {
            bytes += write_group(writer, &mut frame, path, key, values);
        }
        Ok(bytes)
    })
    .unwrap_or_else(|e| panic!("cannot write spill run {}: {e}", path.display()))
}

/// Streaming reader over one run file: yields `(key, values)` groups in
/// the order they were written (sorted by key), holding one frame in
/// memory at a time.
pub(crate) struct RunReader<K, V> {
    reader: BufReader<File>,
    path: PathBuf,
    frame: Vec<u8>,
    _marker: PhantomData<fn() -> (K, V)>,
}

impl<K: KvCodec, V: KvCodec> RunReader<K, V> {
    pub(crate) fn open(path: &Path) -> Self {
        let file = File::open(path)
            .unwrap_or_else(|e| panic!("cannot open spill run {}: {e}", path.display()));
        RunReader {
            reader: BufReader::new(file),
            path: path.to_path_buf(),
            frame: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// The next group, or `None` at end of run.
    pub(crate) fn next_group(&mut self) -> Option<(K, Vec<V>)> {
        let mut len_bytes = [0u8; 8];
        match self.reader.read_exact(&mut len_bytes) {
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => return None,
            r => r.unwrap_or_else(|e| panic!("cannot read spill run {}: {e}", self.path.display())),
        }
        let len = u64::from_le_bytes(len_bytes) as usize;
        self.frame.resize(len, 0);
        self.reader
            .read_exact(&mut self.frame)
            .unwrap_or_else(|e| panic!("truncated spill run {}: {e}", self.path.display()));
        let mut input = &self.frame[..];
        let key = K::decode(&mut input)
            .unwrap_or_else(|| panic!("corrupt spill frame (key) in {}", self.path.display()));
        let values = Vec::<V>::decode(&mut input)
            .unwrap_or_else(|| panic!("corrupt spill frame (values) in {}", self.path.display()));
        Some((key, values))
    }
}

/// The most run files a single merge opens simultaneously. Heavy spills
/// (tiny thresholds over big corpora) can accumulate hundreds of runs per
/// partition, and each reduce worker merges a partition concurrently —
/// without a cap, `workers × runs` open descriptors blow through common
/// 1024-FD ulimits. Runs beyond the cap are first *compacted*: contiguous
/// batches merge into one run each (preserving key order and, within a
/// key, run order) until the count fits.
const MAX_MERGE_FANIN: usize = 64;

/// K-way merge the runs of one partition and reduce each key.
///
/// Every run is sorted by key; ties across runs are visited in run order
/// (earlier run = earlier input), so the reducer sees each key exactly
/// once with its values in input order — the same view the in-memory
/// path delivers. At most [`MAX_MERGE_FANIN`] files are open at once;
/// larger run sets are compacted first. Returns the reduced output and
/// the number of distinct keys.
pub(crate) fn merge_reduce_runs<K, V, O, R>(runs: &[PathBuf], reducer: &R) -> (Vec<O>, u64)
where
    K: KvCodec + Ord,
    V: KvCodec,
    R: Fn(&K, Vec<V>) -> Vec<O>,
{
    let compacted = compact_to_fanin::<K, V>(runs);
    let active: &[PathBuf] = compacted.as_deref().unwrap_or(runs);
    let mut out = Vec::new();
    let mut n_keys = 0u64;
    merge_runs_each::<K, V, _>(active, |key, values| {
        n_keys += 1;
        out.extend(reducer(&key, values));
    });
    (out, n_keys)
}

/// Repeatedly merge contiguous batches of ≤ [`MAX_MERGE_FANIN`] runs into
/// single compacted runs until the count fits one merge pass. Batches are
/// contiguous and visited in order, so a compacted run keeps keys sorted
/// and per-key values in original run (= input) order; consumed inputs
/// are deleted eagerly to bound disk usage. Returns `None` when `runs`
/// already fits.
fn compact_to_fanin<K, V>(runs: &[PathBuf]) -> Option<Vec<PathBuf>>
where
    K: KvCodec + Ord,
    V: KvCodec,
{
    if runs.len() <= MAX_MERGE_FANIN {
        return None;
    }
    let mut current: Vec<PathBuf> = runs.to_vec();
    let mut level = 0usize;
    while current.len() > MAX_MERGE_FANIN {
        let mut next = Vec::with_capacity(current.len().div_ceil(MAX_MERGE_FANIN));
        for (i, batch) in current.chunks(MAX_MERGE_FANIN).enumerate() {
            if batch.len() == 1 {
                next.push(batch[0].clone());
                continue;
            }
            // Unique per (level, batch): batch[0] differs across batches
            // of one level and gains a fresh suffix at the next.
            let mut name = batch[0].file_name().expect("run has a name").to_os_string();
            name.push(format!(".m{level}-{i}"));
            let out_path = batch[0].with_file_name(name);
            kf_types::checkpoint::write_atomic(&out_path, |writer| {
                let mut frame = Vec::new();
                merge_runs_each::<K, V, _>(batch, |key, values| {
                    write_group(writer, &mut frame, &out_path, &key, &values);
                });
                Ok(())
            })
            .unwrap_or_else(|e| panic!("cannot write compacted run {}: {e}", out_path.display()));
            for consumed in batch {
                let _ = std::fs::remove_file(consumed);
            }
            next.push(out_path);
        }
        current = next;
        level += 1;
    }
    Some(current)
}

/// The k-way merge core: stream `(key, values)` groups out of `runs` in
/// ascending key order, concatenating a key's values across runs in run
/// order, and hand each merged group to `each`. Opens every listed run —
/// callers bound the list via [`MAX_MERGE_FANIN`].
fn merge_runs_each<K, V, F>(runs: &[PathBuf], mut each: F)
where
    K: KvCodec + Ord,
    V: KvCodec,
    F: FnMut(K, Vec<V>),
{
    let mut readers: Vec<RunReader<K, V>> = runs.iter().map(|p| RunReader::open(p)).collect();
    let mut heads: Vec<Option<(K, Vec<V>)>> = readers.iter_mut().map(|r| r.next_group()).collect();
    loop {
        // The earliest run holding the smallest key wins; `<` keeps the
        // lowest index on ties.
        let mut min_idx: Option<usize> = None;
        for (i, head) in heads.iter().enumerate() {
            if let Some((key, _)) = head {
                let is_smaller = match min_idx {
                    None => true,
                    Some(m) => key < &heads[m].as_ref().unwrap().0,
                };
                if is_smaller {
                    min_idx = Some(i);
                }
            }
        }
        let Some(mi) = min_idx else { break };
        let (key, mut values) = heads[mi].take().unwrap();
        heads[mi] = readers[mi].next_group();
        // Later runs contribute later input: append in ascending run order.
        for j in mi + 1..heads.len() {
            if heads[j].as_ref().is_some_and(|(k, _)| *k == key) {
                let (_, vs) = heads[j].take().unwrap();
                values.extend(vs);
                heads[j] = readers[j].next_group();
            }
        }
        each(key, values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn spill_dir_is_removed_on_drop() {
        let dir = SpillDir::create(None);
        let path = dir.path().to_path_buf();
        std::fs::write(dir.run_path(0, 0), b"payload").unwrap();
        assert!(path.is_dir());
        drop(dir);
        assert!(!path.exists(), "spill dir must be removed on drop");
    }

    #[test]
    fn spill_dir_is_removed_during_unwind() {
        // The guard must clean up even when a panic unwinds through the
        // scope holding it — the engine relies on this when a reducer
        // panics mid-job.
        let observed: Mutex<Option<PathBuf>> = Mutex::new(None);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let dir = SpillDir::create(None);
            *observed.lock().unwrap() = Some(dir.path().to_path_buf());
            std::fs::write(dir.run_path(3, 1), b"x").unwrap();
            panic!("reducer panicked");
        }));
        assert!(result.is_err());
        let path = observed.lock().unwrap().take().unwrap();
        assert!(!path.exists(), "spill dir must be removed during unwind");
    }

    #[test]
    fn run_roundtrip_preserves_groups_and_order() {
        let dir = SpillDir::create(None);
        let groups: Vec<(u32, Vec<u64>)> = vec![(1, vec![10, 11]), (5, vec![50]), (9, Vec::new())];
        let path = dir.run_path(0, 0);
        let bytes = write_run(&path, &groups);
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        let mut reader: RunReader<u32, u64> = RunReader::open(&path);
        let mut back = Vec::new();
        while let Some(g) = reader.next_group() {
            back.push(g);
        }
        assert_eq!(back, groups);
    }

    #[test]
    fn run_writes_are_atomic_and_leave_no_temp_litter() {
        let dir = SpillDir::create(None);
        let path = dir.run_path(0, 0);
        write_run(&path, &[(1u32, vec![1u64]), (2, vec![2])]);
        // Overwrite with different content: the rename must fully replace.
        let bytes = write_run(&path, &[(9u32, vec![9u64])]);
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        let mut reader: RunReader<u32, u64> = RunReader::open(&path);
        assert_eq!(reader.next_group(), Some((9, vec![9])));
        assert_eq!(reader.next_group(), None);
        // Only the run file itself lives in the spill dir — no `.tmp-`
        // staging files survive the rename.
        let names: Vec<String> = std::fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["p0-run0.bin".to_string()], "{names:?}");
    }

    #[test]
    fn merge_interleaves_runs_in_key_then_run_order() {
        let dir = SpillDir::create(None);
        // Run 0 (earlier input): keys 1, 3. Run 1: keys 1, 2.
        let r0 = dir.run_path(0, 0);
        let r1 = dir.run_path(0, 1);
        write_run(&r0, &[(1u32, vec![10u64, 11]), (3, vec![30])]);
        write_run(&r1, &[(1u32, vec![12u64]), (2, vec![20])]);
        let (out, n_keys) = merge_reduce_runs(&[r0, r1], &|k: &u32, vs: Vec<u64>| vec![(*k, vs)]);
        assert_eq!(n_keys, 3);
        assert_eq!(
            out,
            vec![
                (1, vec![10, 11, 12]), // run-0 values before run-1 values
                (2, vec![20]),
                (3, vec![30]),
            ]
        );
    }

    #[test]
    fn merge_beyond_fanin_compacts_and_preserves_order() {
        // 150 runs (> 2×MAX_MERGE_FANIN): the merge must compact down to
        // a bounded fan-in while keeping keys sorted and per-key values
        // in run order, and must delete the consumed inputs.
        let dir = SpillDir::create(None);
        let n_runs = 150usize;
        let runs: Vec<PathBuf> = (0..n_runs)
            .map(|r| {
                let path = dir.run_path(0, r);
                // Every run holds keys r%5 and 1000+r, values tagged with
                // the run index so cross-run order is observable.
                write_run(
                    &path,
                    &[
                        ((r % 5) as u32, vec![r as u64]),
                        (1_000 + r as u32, vec![r as u64]),
                    ],
                );
                path
            })
            .collect();
        let (out, n_keys) = merge_reduce_runs(&runs, &|k: &u32, vs: Vec<u64>| vec![(*k, vs)]);
        assert_eq!(n_keys, 5 + n_runs as u64);
        // Keys ascend overall.
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        // Shared keys concatenate values in run (= input) order.
        for key in 0u32..5 {
            let (_, vs) = out.iter().find(|(k, _)| *k == key).unwrap();
            let expected: Vec<u64> = (0..n_runs as u64).filter(|r| r % 5 == key as u64).collect();
            assert_eq!(vs, &expected, "key {key}");
        }
        // Consumed level-0 runs were removed; only compacted files remain.
        let remaining = std::fs::read_dir(dir.path()).unwrap().count();
        assert!(
            remaining <= MAX_MERGE_FANIN,
            "{remaining} files left after compaction"
        );
    }

    #[test]
    fn merge_of_empty_run_list_is_empty() {
        let (out, n_keys) = merge_reduce_runs::<u32, u64, u32, _>(&[], &|k, _| vec![*k]);
        assert!(out.is_empty());
        assert_eq!(n_keys, 0);
    }
}
