//! The map → shuffle → reduce execution engine.
//!
//! Two shuffle strategies share one reduce phase:
//!
//! * **Unchunked** (`chunk_records == 0`, the default): the whole map
//!   output is materialised in per-partition buffers before any grouping
//!   happens. Peak raw-record residency equals the full shuffle volume
//!   (`JobStats::map_output`).
//! * **Chunked** (`chunk_records > 0`): inputs are mapped in bounded
//!   *waves* sized so each wave emits roughly `chunk_records` records; as
//!   each wave's buffers fill they are immediately merged into
//!   per-partition reduce-side group accumulators and freed. Peak
//!   raw-record residency is the largest single wave
//!   ([`JobStats::peak_resident_records`]), not the whole shuffle.
//!
//! Both paths are deterministic and produce identical output: waves are
//! processed in input order and, within a wave, worker buffers are merged
//! in worker order (workers own contiguous input chunks), so a key's
//! values always reach the reducer ordered by input index. Chunking bounds
//! the raw shuffle copy only — grouped values still accumulate in memory
//! until their key is reduced; spill-to-disk partitions are the next step
//! (see ROADMAP.md).

use crate::stats::JobStats;
use kf_types::hash::hash_one;
use kf_types::FxHashMap;
use std::hash::Hash;

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrConfig {
    /// Number of worker threads for the map and reduce phases.
    pub workers: usize,
    /// Number of shuffle partitions. More partitions smooth out key skew at
    /// the cost of per-partition overhead; defaults to `4 × workers`.
    /// Clamped to at least 1 by the engine (a directly constructed
    /// `partitions: 0` must not panic the shuffle router).
    pub partitions: usize,
    /// Soft cap on raw (mapper-emitted, not yet grouped) shuffle records
    /// resident in memory at once. `0` disables chunking and materialises
    /// the whole map output before reduction. The cap is approximate: a
    /// wave may overshoot when the mapper fan-out spikes, and a single
    /// input's emissions are never split across waves.
    pub chunk_records: usize,
}

impl Default for MrConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        MrConfig {
            workers,
            partitions: workers * 4,
            chunk_records: 0,
        }
    }
}

impl MrConfig {
    /// A single-threaded configuration; useful for debugging and for
    /// baseline measurements in the scaling benches.
    pub fn sequential() -> Self {
        MrConfig {
            workers: 1,
            partitions: 1,
            chunk_records: 0,
        }
    }

    /// Configuration with `workers` threads and the default partition ratio.
    pub fn with_workers(workers: usize) -> Self {
        MrConfig {
            workers: workers.max(1),
            partitions: workers.max(1) * 4,
            chunk_records: 0,
        }
    }

    /// Builder-style: bound raw shuffle residency to roughly
    /// `chunk_records` records (`0` disables chunking).
    pub fn with_chunk_records(mut self, chunk_records: usize) -> Self {
        self.chunk_records = chunk_records;
        self
    }
}

/// Collects `(key, value)` records emitted by a mapper and routes them to
/// shuffle partitions by key hash.
pub struct Emitter<K, V> {
    buffers: Vec<Vec<(K, V)>>,
    emitted: u64,
}

impl<K: Hash, V> Emitter<K, V> {
    fn new(partitions: usize) -> Self {
        // Clamp defensively: routing needs at least one bucket even if a
        // caller hands the engine `partitions: 0`.
        Emitter {
            buffers: (0..partitions.max(1)).map(|_| Vec::new()).collect(),
            emitted: 0,
        }
    }

    /// Emit one record.
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        let p = (hash_one(&key) as usize) % self.buffers.len();
        self.buffers[p].push((key, value));
        self.emitted += 1;
    }
}

/// Reduce-side accumulator: one group of values per distinct key.
type Groups<K, V> = FxHashMap<K, Vec<V>>;

/// What the shuffle hands to a reduce worker for one partition.
enum Partition<K, V> {
    /// Unchunked: raw records, grouped inside the reduce worker.
    Raw(Vec<(K, V)>),
    /// Chunked: records already merged into groups wave by wave.
    Grouped(Groups<K, V>),
}

/// Run a MapReduce job.
///
/// * `inputs` — the input records; read-only, shared across map workers.
/// * `mapper` — called once per input with an [`Emitter`]; may emit any
///   number of `(key, value)` records.
/// * `reducer` — called once per distinct key with all its values (in a
///   deterministic order: values are ordered by input index); returns the
///   output records for that key.
///
/// Output records are returned grouped by partition and sorted by key within
/// each partition, so the overall output is deterministic — and identical
/// whether or not the shuffle is chunked ([`MrConfig::chunk_records`]).
pub fn map_reduce<I, K, V, O, M, R>(cfg: &MrConfig, inputs: &[I], mapper: M, reducer: R) -> Vec<O>
where
    I: Sync,
    K: Hash + Eq + Ord + Send,
    V: Send,
    O: Send,
    M: Fn(&I, &mut Emitter<K, V>) + Sync,
    R: Fn(&K, Vec<V>) -> Vec<O> + Sync,
{
    map_reduce_with_stats(cfg, inputs, mapper, reducer).0
}

/// [`map_reduce`] variant that also returns execution counters.
pub fn map_reduce_with_stats<I, K, V, O, M, R>(
    cfg: &MrConfig,
    inputs: &[I],
    mapper: M,
    reducer: R,
) -> (Vec<O>, JobStats)
where
    I: Sync,
    K: Hash + Eq + Ord + Send,
    V: Send,
    O: Send,
    M: Fn(&I, &mut Emitter<K, V>) + Sync,
    R: Fn(&K, Vec<V>) -> Vec<O> + Sync,
{
    let workers = cfg.workers.max(1);
    let partitions = cfg.partitions.max(1);
    let mut stats = JobStats::new(inputs.len() as u64);

    // ---- Map + shuffle ---------------------------------------------------
    let payloads: Vec<Partition<K, V>> = if cfg.chunk_records == 0 {
        let (records, map_output) = shuffle_unchunked(inputs, workers, partitions, &mapper);
        stats.map_output = map_output;
        // The whole raw shuffle is resident at once.
        stats.peak_resident_records = map_output;
        records.into_iter().map(Partition::Raw).collect()
    } else {
        let (groups, map_output, peak) =
            shuffle_chunked(inputs, workers, partitions, cfg.chunk_records, &mapper);
        stats.map_output = map_output;
        stats.peak_resident_records = peak;
        groups.into_iter().map(Partition::Grouped).collect()
    };

    // ---- Reduce phase ----------------------------------------------------
    // Workers steal whole partitions off a shared index. Keys are reduced in
    // sorted order within a partition for deterministic output; partition
    // results are re-assembled in partition order at the end.
    let next_partition = std::sync::atomic::AtomicUsize::new(0);
    // Partition data sits in Mutex<Option<..>> slots so exactly one worker
    // takes each partition; contention is one lock acquisition per
    // partition, not per record.
    type PartitionSlot<K, V> = std::sync::Mutex<Option<Partition<K, V>>>;
    let partition_slots: Vec<PartitionSlot<K, V>> = payloads
        .into_iter()
        .map(|p| std::sync::Mutex::new(Some(p)))
        .collect();

    let mut results: Vec<(usize, Vec<O>, u64)> = Vec::with_capacity(partitions);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next_partition;
                let reducer = &reducer;
                let slots = &partition_slots;
                scope.spawn(move || {
                    let mut local: Vec<(usize, Vec<O>, u64)> = Vec::new();
                    loop {
                        let p = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if p >= slots.len() {
                            break;
                        }
                        let payload = slots[p]
                            .lock()
                            .expect("partition lock poisoned")
                            .take()
                            .expect("partition taken twice");
                        let groups = match payload {
                            Partition::Grouped(groups) => groups,
                            Partition::Raw(records) => {
                                let mut groups: Groups<K, V> = FxHashMap::default();
                                merge_buffers(&mut groups, vec![records]);
                                groups
                            }
                        };
                        let mut keyed: Vec<(K, Vec<V>)> = groups.into_iter().collect();
                        keyed.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                        let n_keys = keyed.len() as u64;
                        let mut out = Vec::new();
                        for (k, vs) in keyed {
                            out.extend(reducer(&k, vs));
                        }
                        local.push((p, out, n_keys));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            results.extend(h.join().expect("reduce worker panicked"));
        }
    });
    results.sort_unstable_by_key(|r| r.0);

    let mut output = Vec::new();
    for (_, out, n_keys) in results {
        stats.reduce_keys += n_keys;
        stats.reduce_output += out.len() as u64;
        output.extend(out);
    }
    (output, stats)
}

/// Map `inputs` across up to `workers` threads (contiguous chunks, so
/// per-key value order follows input order) and return the emitters in
/// worker (= input) order.
fn map_slice<I, K, V, M>(
    inputs: &[I],
    workers: usize,
    partitions: usize,
    mapper: &M,
) -> Vec<Emitter<K, V>>
where
    I: Sync,
    K: Hash + Send,
    V: Send,
    M: Fn(&I, &mut Emitter<K, V>) + Sync,
{
    if inputs.is_empty() {
        return Vec::new();
    }
    let chunk_size = inputs.len().div_ceil(workers).max(1);
    if workers == 1 || inputs.len() <= chunk_size {
        // Single chunk: run inline, no thread spawn.
        let mut emitter = Emitter::new(partitions);
        for input in inputs {
            mapper(input, &mut emitter);
        }
        return vec![emitter];
    }
    let mut out = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut emitter = Emitter::new(partitions);
                    for input in chunk {
                        mapper(input, &mut emitter);
                    }
                    emitter
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("map worker panicked"));
        }
    });
    out
}

/// One-shot shuffle: map everything, then concatenate each partition's
/// buffers in worker order. Returns `(per-partition raw records, map_output)`.
fn shuffle_unchunked<I, K, V, M>(
    inputs: &[I],
    workers: usize,
    partitions: usize,
    mapper: &M,
) -> (Vec<Vec<(K, V)>>, u64)
where
    I: Sync,
    K: Hash + Send,
    V: Send,
    M: Fn(&I, &mut Emitter<K, V>) + Sync,
{
    let emitters = map_slice(inputs, workers, partitions, mapper);
    let map_output = emitters.iter().map(|e| e.emitted).sum();
    let mut partition_records: Vec<Vec<(K, V)>> = (0..partitions).map(|_| Vec::new()).collect();
    for emitter in emitters {
        for (p, buf) in emitter.buffers.into_iter().enumerate() {
            partition_records[p].extend(buf);
        }
    }
    (partition_records, map_output)
}

/// Wave-based shuffle: map bounded input waves, merging each wave's buffers
/// into per-partition group accumulators as they fill, so at most roughly
/// `quota` raw records are resident at once. Wave sizes adapt to the
/// observed mapper fan-out. Returns
/// `(per-partition groups, map_output, peak resident raw records)`.
fn shuffle_chunked<I, K, V, M>(
    inputs: &[I],
    workers: usize,
    partitions: usize,
    quota: usize,
    mapper: &M,
) -> (Vec<Groups<K, V>>, u64, u64)
where
    I: Sync,
    K: Hash + Eq + Send,
    V: Send,
    M: Fn(&I, &mut Emitter<K, V>) + Sync,
{
    let quota = quota.max(1);
    let mut groups: Vec<Groups<K, V>> = (0..partitions).map(|_| FxHashMap::default()).collect();
    let mut consumed = 0usize;
    let mut emitted_total = 0u64;
    let mut peak = 0u64;
    let mut last_wave = (0usize, 0u64);
    while consumed < inputs.len() {
        // Two rules size each wave:
        //
        // 1. The PREVIOUS wave's observed fan-out divides the quota — a
        //    local estimate tracks skewed inputs (e.g. items sorted so
        //    that high-fan-out regions cluster) far better than a global
        //    running average. It is floored at 1, so a wave never takes
        //    more than `quota` inputs and a low-emission prefix cannot
        //    grow a catch-up wave whose emissions dwarf the quota once
        //    the mapper starts emitting again. (Sub-quota waves from
        //    fan-out < 1 are cheap: small waves merge inline, and the
        //    map scan cost is the same however it is sliced.)
        // 2. A wave takes at most 2× the previous wave's inputs,
        //    starting from 1 — a geometric ramp, so even when the input
        //    *starts* in its hottest region (Zipf-head items first) the
        //    cold estimate can only overshoot the quota by ~2×, at the
        //    cost of ~log2(quota) tiny ramp-up waves.
        let wave_len = if consumed == 0 {
            1
        } else {
            let fanout = (last_wave.1 as f64 / last_wave.0 as f64).max(1.0);
            (((quota as f64) / fanout).ceil() as usize).min(last_wave.0.saturating_mul(2))
        }
        .clamp(1, inputs.len() - consumed);
        let wave = &inputs[consumed..consumed + wave_len];
        let emitters = map_slice(wave, workers, partitions, mapper);
        let wave_emitted: u64 = emitters.iter().map(|e| e.emitted).sum();
        peak = peak.max(wave_emitted);
        emitted_total += wave_emitted;
        consumed += wave_len;
        last_wave = (wave_len, wave_emitted);
        merge_wave(emitters, &mut groups, workers);
    }
    (groups, emitted_total, peak)
}

/// Drain one wave's emitter buffers into the per-partition group
/// accumulators. Buffers are appended in worker order, preserving per-key
/// input order; partitions are merged in parallel (each partition is owned
/// by exactly one merge task, so no locks).
fn merge_wave<K, V>(emitters: Vec<Emitter<K, V>>, groups: &mut [Groups<K, V>], workers: usize)
where
    K: Hash + Eq + Send,
    V: Send,
{
    // Below this many records a wave is merged inline: spawning merge
    // threads per tiny wave (small `chunk_records`) would cost more than
    // the moves themselves.
    const PARALLEL_MERGE_THRESHOLD: u64 = 4_096;
    let wave_records: u64 = emitters.iter().map(|e| e.emitted).sum();
    let partitions = groups.len();
    let mut per_partition: Vec<Vec<Vec<(K, V)>>> = (0..partitions).map(|_| Vec::new()).collect();
    for emitter in emitters {
        for (p, buf) in emitter.buffers.into_iter().enumerate() {
            if !buf.is_empty() {
                per_partition[p].push(buf);
            }
        }
    }
    if workers == 1 || partitions == 1 || wave_records < PARALLEL_MERGE_THRESHOLD {
        for (group, bufs) in groups.iter_mut().zip(per_partition) {
            merge_buffers(group, bufs);
        }
        return;
    }
    type MergeTask<'a, K, V> = (&'a mut Groups<K, V>, Vec<Vec<(K, V)>>);
    let mut tasks: Vec<MergeTask<'_, K, V>> = groups.iter_mut().zip(per_partition).collect();
    let per_worker = tasks.len().div_ceil(workers).max(1);
    std::thread::scope(|scope| {
        while !tasks.is_empty() {
            let chunk: Vec<_> = tasks.drain(..per_worker.min(tasks.len())).collect();
            scope.spawn(move || {
                for (group, bufs) in chunk {
                    merge_buffers(group, bufs);
                }
            });
        }
    });
}

fn merge_buffers<K: Hash + Eq, V>(group: &mut Groups<K, V>, bufs: Vec<Vec<(K, V)>>) {
    for buf in bufs {
        for (k, v) in buf {
            group.entry(k).or_default().push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic word count over synthetic "documents".
    fn word_count(cfg: &MrConfig, docs: &[&str]) -> Vec<(String, usize)> {
        map_reduce(
            cfg,
            docs,
            |doc: &&str, emit: &mut Emitter<String, usize>| {
                for word in doc.split_whitespace() {
                    emit.emit(word.to_string(), 1);
                }
            },
            |word, counts| vec![(word.clone(), counts.len())],
        )
    }

    #[test]
    fn word_count_basic() {
        let docs = ["a b a", "b c", "a"];
        let mut out = word_count(&MrConfig::sequential(), &docs);
        out.sort();
        assert_eq!(
            out,
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 2),
                ("c".to_string(), 1)
            ]
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let docs: Vec<String> = (0..500)
            .map(|i| format!("w{} w{} shared", i % 7, i % 13))
            .collect();
        let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let mut seq = word_count(&MrConfig::sequential(), &doc_refs);
        let mut par = word_count(&MrConfig::with_workers(8), &doc_refs);
        seq.sort();
        par.sort();
        assert_eq!(seq, par);
    }

    #[test]
    fn output_is_deterministic_across_runs() {
        let inputs: Vec<u64> = (0..10_000).collect();
        let run = || {
            map_reduce(
                &MrConfig::with_workers(6),
                &inputs,
                |&x, emit: &mut Emitter<u64, u64>| emit.emit(x % 97, x),
                |k, vs| vec![(*k, vs.iter().sum::<u64>())],
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn values_arrive_in_input_order() {
        // Reducer sees values ordered by input index even with many workers.
        let inputs: Vec<u32> = (0..5_000).collect();
        let out = map_reduce(
            &MrConfig::with_workers(8),
            &inputs,
            |&x, emit: &mut Emitter<u32, u32>| emit.emit(x % 3, x),
            |_k, vs| {
                assert!(vs.windows(2).all(|w| w[0] < w[1]), "values out of order");
                vec![vs.len()]
            },
        );
        assert_eq!(out.iter().sum::<usize>(), 5_000);
    }

    #[test]
    fn values_arrive_in_input_order_chunked() {
        // The chunked shuffle must preserve the same per-key value order:
        // waves run in input order and worker buffers merge in input order.
        let inputs: Vec<u32> = (0..5_000).collect();
        let out = map_reduce(
            &MrConfig::with_workers(8).with_chunk_records(256),
            &inputs,
            |&x, emit: &mut Emitter<u32, u32>| emit.emit(x % 3, x),
            |_k, vs| {
                assert!(vs.windows(2).all(|w| w[0] < w[1]), "values out of order");
                vec![vs.len()]
            },
        );
        assert_eq!(out.iter().sum::<usize>(), 5_000);
    }

    #[test]
    fn chunked_output_matches_unchunked_exactly() {
        let docs: Vec<String> = (0..800)
            .map(|i| format!("w{} w{} shared", i % 17, i % 29))
            .collect();
        let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let unchunked = word_count(&MrConfig::with_workers(4), &doc_refs);
        for chunk in [1usize, 7, 64, 1 << 20] {
            let chunked = word_count(
                &MrConfig::with_workers(4).with_chunk_records(chunk),
                &doc_refs,
            );
            // Not just set equality: the partition-then-key output order is
            // identical, so plain == must hold.
            assert_eq!(unchunked, chunked, "chunk_records = {chunk}");
        }
    }

    #[test]
    fn chunked_peak_is_bounded_below_unchunked() {
        let inputs: Vec<u64> = (0..50_000).collect();
        let job = |cfg: &MrConfig| {
            map_reduce_with_stats(
                cfg,
                &inputs,
                |&x, emit: &mut Emitter<u64, u64>| emit.emit(x % 513, x),
                |k, vs| vec![(*k, vs.iter().sum::<u64>())],
            )
            .1
        };
        let unchunked = job(&MrConfig::with_workers(4));
        assert_eq!(unchunked.peak_resident_records, unchunked.map_output);

        let chunked = job(&MrConfig::with_workers(4).with_chunk_records(2_048));
        assert_eq!(chunked.map_output, unchunked.map_output);
        assert!(
            chunked.peak_resident_records < unchunked.peak_resident_records,
            "peak {} not below unchunked {}",
            chunked.peak_resident_records,
            unchunked.peak_resident_records
        );
        // Fan-out here is exactly 1, so the bound is tight up to one wave.
        assert!(
            chunked.peak_resident_records <= 2 * 2_048,
            "peak {} far above the 2048-record quota",
            chunked.peak_resident_records
        );
    }

    #[test]
    fn partitions_zero_is_clamped() {
        // Regression: a directly constructed `partitions: 0` (or
        // `workers: 0`) must be clamped by the engine, not panic with a
        // modulo-by-zero in the shuffle router.
        for chunk_records in [0usize, 16] {
            let cfg = MrConfig {
                workers: 0,
                partitions: 0,
                chunk_records,
            };
            let docs = ["a b a", "b c"];
            let mut out = word_count(&cfg, &docs);
            out.sort();
            assert_eq!(
                out,
                vec![
                    ("a".to_string(), 2),
                    ("b".to_string(), 2),
                    ("c".to_string(), 1)
                ]
            );
        }
    }

    #[test]
    fn empty_input_gives_empty_output() {
        for cfg in [
            MrConfig::default(),
            MrConfig::default().with_chunk_records(64),
        ] {
            let out: Vec<u32> = map_reduce(
                &cfg,
                &Vec::<u32>::new(),
                |&x, emit: &mut Emitter<u32, u32>| emit.emit(x, x),
                |_k, _vs| vec![0u32],
            );
            assert!(out.is_empty());
        }
    }

    #[test]
    fn skewed_keys_are_handled() {
        // 90% of records share one key — the paper's data-item skew
        // (up to 2.7M extractions for one item).
        let inputs: Vec<u32> = (0..20_000).collect();
        for cfg in [
            MrConfig::with_workers(4),
            MrConfig::with_workers(4).with_chunk_records(1_000),
        ] {
            let out = map_reduce(
                &cfg,
                &inputs,
                |&x, emit: &mut Emitter<u32, u32>| {
                    let key = if x % 10 == 0 { x % 100 } else { 0 };
                    emit.emit(key, x);
                },
                |k, vs| vec![(*k, vs.len())],
            );
            let total: usize = out.iter().map(|&(_, n)| n).sum();
            assert_eq!(total, 20_000);
            let hot = out.iter().find(|&&(k, _)| k == 0).unwrap().1;
            assert!(hot >= 18_000);
        }
    }

    #[test]
    fn stats_count_records() {
        let inputs: Vec<u32> = (0..100).collect();
        let (_, stats) = map_reduce_with_stats(
            &MrConfig::with_workers(3),
            &inputs,
            |&x, emit: &mut Emitter<u32, u32>| {
                emit.emit(x % 10, x);
                emit.emit(x % 5, x);
            },
            |_k, vs| vs,
        );
        assert_eq!(stats.map_input, 100);
        assert_eq!(stats.map_output, 200);
        assert_eq!(stats.reduce_keys, 10); // keys 0..10 (x%5 ⊂ x%10)
        assert_eq!(stats.reduce_output, 200);
        // Unchunked: the whole shuffle is resident at once.
        assert_eq!(stats.peak_resident_records, 200);
    }

    #[test]
    fn chunked_waves_adapt_to_fanout() {
        // Each input emits 10 records; the adaptive wave sizing must keep
        // the peak near the quota instead of 10× above it.
        let inputs: Vec<u32> = (0..5_000).collect();
        let (_, stats) = map_reduce_with_stats(
            &MrConfig::sequential().with_chunk_records(1_000),
            &inputs,
            |&x, emit: &mut Emitter<u32, u32>| {
                for j in 0..10 {
                    emit.emit((x + j) % 97, x);
                }
            },
            |k, vs| vec![(*k, vs.len())],
        );
        assert_eq!(stats.map_output, 50_000);
        // The geometric ramp keeps early waves tiny while the fan-out is
        // unknown; steady-state waves are sized from the observed fan-out
        // (~100 inputs → ~1000 records), so the peak stays near the quota
        // despite the 10× fan-out.
        assert!(
            stats.peak_resident_records <= 1_100,
            "peak {} did not adapt",
            stats.peak_resident_records
        );
    }

    #[test]
    fn low_emission_prefix_does_not_blow_the_quota() {
        // First half of the input emits nothing. The fan-out estimate is
        // floored at 1 (a wave never takes more than `quota` inputs), so
        // when emissions resume the peak stays at the quota instead of a
        // huge catch-up wave.
        let inputs: Vec<u32> = (0..40_000).collect();
        let (_, stats) = map_reduce_with_stats(
            &MrConfig::sequential().with_chunk_records(500),
            &inputs,
            |&x, emit: &mut Emitter<u32, u32>| {
                if x >= 20_000 {
                    emit.emit(x % 97, x);
                }
            },
            |k, vs| vec![(*k, vs.len())],
        );
        assert_eq!(stats.map_output, 20_000);
        assert!(
            stats.peak_resident_records <= 500,
            "peak {} above the 500-record quota",
            stats.peak_resident_records
        );
    }

    #[test]
    fn more_workers_than_inputs() {
        let inputs = vec![1u32, 2];
        let out = map_reduce(
            &MrConfig::with_workers(16),
            &inputs,
            |&x, emit: &mut Emitter<u32, u32>| emit.emit(x, x),
            |k, _| vec![*k],
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn multi_output_reducer() {
        let inputs = vec![1u32, 1, 2];
        let mut out = map_reduce(
            &MrConfig::sequential(),
            &inputs,
            |&x, emit: &mut Emitter<u32, u32>| emit.emit(x, x),
            |k, vs| vs.iter().map(|v| (*k, *v)).collect(),
        );
        out.sort();
        assert_eq!(out, vec![(1, 1), (1, 1), (2, 2)]);
    }
}
