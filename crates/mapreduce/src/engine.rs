//! The map → shuffle → reduce execution engine.

use crate::stats::JobStats;
use kf_types::hash::hash_one;
use kf_types::FxHashMap;
use std::hash::Hash;

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrConfig {
    /// Number of worker threads for the map and reduce phases.
    pub workers: usize,
    /// Number of shuffle partitions. More partitions smooth out key skew at
    /// the cost of per-partition overhead; defaults to `4 × workers`.
    pub partitions: usize,
}

impl Default for MrConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        MrConfig {
            workers,
            partitions: workers * 4,
        }
    }
}

impl MrConfig {
    /// A single-threaded configuration; useful for debugging and for
    /// baseline measurements in the scaling benches.
    pub fn sequential() -> Self {
        MrConfig {
            workers: 1,
            partitions: 1,
        }
    }

    /// Configuration with `workers` threads and the default partition ratio.
    pub fn with_workers(workers: usize) -> Self {
        MrConfig {
            workers: workers.max(1),
            partitions: workers.max(1) * 4,
        }
    }
}

/// Collects `(key, value)` records emitted by a mapper and routes them to
/// shuffle partitions by key hash.
pub struct Emitter<K, V> {
    buffers: Vec<Vec<(K, V)>>,
    emitted: u64,
}

impl<K: Hash, V> Emitter<K, V> {
    fn new(partitions: usize) -> Self {
        Emitter {
            buffers: (0..partitions).map(|_| Vec::new()).collect(),
            emitted: 0,
        }
    }

    /// Emit one record.
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        let p = (hash_one(&key) as usize) % self.buffers.len();
        self.buffers[p].push((key, value));
        self.emitted += 1;
    }
}

/// Run a MapReduce job.
///
/// * `inputs` — the input records; read-only, shared across map workers.
/// * `mapper` — called once per input with an [`Emitter`]; may emit any
///   number of `(key, value)` records.
/// * `reducer` — called once per distinct key with all its values (in a
///   deterministic order: values are ordered by input index); returns the
///   output records for that key.
///
/// Output records are returned grouped by partition and sorted by key within
/// each partition, so the overall output is deterministic.
pub fn map_reduce<I, K, V, O, M, R>(cfg: &MrConfig, inputs: &[I], mapper: M, reducer: R) -> Vec<O>
where
    I: Sync,
    K: Hash + Eq + Ord + Send,
    V: Send,
    O: Send,
    M: Fn(&I, &mut Emitter<K, V>) + Sync,
    R: Fn(&K, Vec<V>) -> Vec<O> + Sync,
{
    map_reduce_with_stats(cfg, inputs, mapper, reducer).0
}

/// [`map_reduce`] variant that also returns execution counters.
pub fn map_reduce_with_stats<I, K, V, O, M, R>(
    cfg: &MrConfig,
    inputs: &[I],
    mapper: M,
    reducer: R,
) -> (Vec<O>, JobStats)
where
    I: Sync,
    K: Hash + Eq + Ord + Send,
    V: Send,
    O: Send,
    M: Fn(&I, &mut Emitter<K, V>) + Sync,
    R: Fn(&K, Vec<V>) -> Vec<O> + Sync,
{
    let workers = cfg.workers.max(1);
    let partitions = cfg.partitions.max(1);
    let mut stats = JobStats::new(inputs.len() as u64);

    // ---- Map phase -------------------------------------------------------
    // Each worker maps a contiguous chunk of the input into its own set of
    // per-partition buffers; no locks on the hot path.
    let chunk_size = inputs.len().div_ceil(workers).max(1);
    let mut worker_outputs: Vec<Emitter<K, V>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .chunks(chunk_size)
            .map(|chunk| {
                let mapper = &mapper;
                scope.spawn(move || {
                    let mut emitter = Emitter::new(partitions);
                    for input in chunk {
                        mapper(input, &mut emitter);
                    }
                    emitter
                })
            })
            .collect();
        for h in handles {
            worker_outputs.push(h.join().expect("map worker panicked"));
        }
    });
    stats.map_output = worker_outputs.iter().map(|e| e.emitted).sum();

    // ---- Shuffle ---------------------------------------------------------
    // Concatenate each partition's buffers in worker order. Because workers
    // own contiguous input chunks, values for a key end up ordered by input
    // index — a deterministic order independent of scheduling.
    let mut partition_records: Vec<Vec<(K, V)>> = (0..partitions).map(|_| Vec::new()).collect();
    for emitter in worker_outputs {
        for (p, buf) in emitter.buffers.into_iter().enumerate() {
            partition_records[p].extend(buf);
        }
    }

    // ---- Reduce phase ----------------------------------------------------
    // Workers steal whole partitions off a shared index. Keys are reduced in
    // sorted order within a partition for deterministic output; partition
    // results are re-assembled in partition order at the end.
    let next_partition = std::sync::atomic::AtomicUsize::new(0);
    // Partition data sits in Mutex<Option<..>> slots so exactly one worker
    // takes each partition; contention is one lock acquisition per
    // partition, not per record.
    type PartitionSlot<K, V> = std::sync::Mutex<Option<Vec<(K, V)>>>;
    let partition_slots: Vec<PartitionSlot<K, V>> = partition_records
        .into_iter()
        .map(|records| std::sync::Mutex::new(Some(records)))
        .collect();

    let mut results: Vec<(usize, Vec<O>, u64)> = Vec::with_capacity(partitions);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next_partition;
                let reducer = &reducer;
                let slots = &partition_slots;
                scope.spawn(move || {
                    let mut local: Vec<(usize, Vec<O>, u64)> = Vec::new();
                    loop {
                        let p = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if p >= slots.len() {
                            break;
                        }
                        let records = slots[p]
                            .lock()
                            .expect("partition lock poisoned")
                            .take()
                            .expect("partition taken twice");
                        let mut groups: FxHashMap<K, Vec<V>> = FxHashMap::default();
                        for (k, v) in records {
                            groups.entry(k).or_default().push(v);
                        }
                        let mut keyed: Vec<(K, Vec<V>)> = groups.into_iter().collect();
                        keyed.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                        let n_keys = keyed.len() as u64;
                        let mut out = Vec::new();
                        for (k, vs) in keyed {
                            out.extend(reducer(&k, vs));
                        }
                        local.push((p, out, n_keys));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            results.extend(h.join().expect("reduce worker panicked"));
        }
    });
    results.sort_unstable_by_key(|r| r.0);

    let mut output = Vec::new();
    for (_, out, n_keys) in results {
        stats.reduce_keys += n_keys;
        stats.reduce_output += out.len() as u64;
        output.extend(out);
    }
    (output, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic word count over synthetic "documents".
    fn word_count(cfg: &MrConfig, docs: &[&str]) -> Vec<(String, usize)> {
        map_reduce(
            cfg,
            docs,
            |doc: &&str, emit: &mut Emitter<String, usize>| {
                for word in doc.split_whitespace() {
                    emit.emit(word.to_string(), 1);
                }
            },
            |word, counts| vec![(word.clone(), counts.len())],
        )
    }

    #[test]
    fn word_count_basic() {
        let docs = ["a b a", "b c", "a"];
        let mut out = word_count(&MrConfig::sequential(), &docs);
        out.sort();
        assert_eq!(
            out,
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 2),
                ("c".to_string(), 1)
            ]
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let docs: Vec<String> = (0..500)
            .map(|i| format!("w{} w{} shared", i % 7, i % 13))
            .collect();
        let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let mut seq = word_count(&MrConfig::sequential(), &doc_refs);
        let mut par = word_count(&MrConfig::with_workers(8), &doc_refs);
        seq.sort();
        par.sort();
        assert_eq!(seq, par);
    }

    #[test]
    fn output_is_deterministic_across_runs() {
        let inputs: Vec<u64> = (0..10_000).collect();
        let run = || {
            map_reduce(
                &MrConfig::with_workers(6),
                &inputs,
                |&x, emit: &mut Emitter<u64, u64>| emit.emit(x % 97, x),
                |k, vs| vec![(*k, vs.iter().sum::<u64>())],
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn values_arrive_in_input_order() {
        // Reducer sees values ordered by input index even with many workers.
        let inputs: Vec<u32> = (0..5_000).collect();
        let out = map_reduce(
            &MrConfig::with_workers(8),
            &inputs,
            |&x, emit: &mut Emitter<u32, u32>| emit.emit(x % 3, x),
            |_k, vs| {
                assert!(vs.windows(2).all(|w| w[0] < w[1]), "values out of order");
                vec![vs.len()]
            },
        );
        assert_eq!(out.iter().sum::<usize>(), 5_000);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let out: Vec<u32> = map_reduce(
            &MrConfig::default(),
            &Vec::<u32>::new(),
            |&x, emit: &mut Emitter<u32, u32>| emit.emit(x, x),
            |_k, _vs| vec![0u32],
        );
        assert!(out.is_empty());
    }

    #[test]
    fn skewed_keys_are_handled() {
        // 90% of records share one key — the paper's data-item skew
        // (up to 2.7M extractions for one item).
        let inputs: Vec<u32> = (0..20_000).collect();
        let out = map_reduce(
            &MrConfig::with_workers(4),
            &inputs,
            |&x, emit: &mut Emitter<u32, u32>| {
                let key = if x % 10 == 0 { x % 100 } else { 0 };
                emit.emit(key, x);
            },
            |k, vs| vec![(*k, vs.len())],
        );
        let total: usize = out.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 20_000);
        let hot = out.iter().find(|&&(k, _)| k == 0).unwrap().1;
        assert!(hot >= 18_000);
    }

    #[test]
    fn stats_count_records() {
        let inputs: Vec<u32> = (0..100).collect();
        let (_, stats) = map_reduce_with_stats(
            &MrConfig::with_workers(3),
            &inputs,
            |&x, emit: &mut Emitter<u32, u32>| {
                emit.emit(x % 10, x);
                emit.emit(x % 5, x);
            },
            |_k, vs| vs,
        );
        assert_eq!(stats.map_input, 100);
        assert_eq!(stats.map_output, 200);
        assert_eq!(stats.reduce_keys, 10); // keys 0..10 (x%5 ⊂ x%10)
        assert_eq!(stats.reduce_output, 200);
    }

    #[test]
    fn more_workers_than_inputs() {
        let inputs = vec![1u32, 2];
        let out = map_reduce(
            &MrConfig::with_workers(16),
            &inputs,
            |&x, emit: &mut Emitter<u32, u32>| emit.emit(x, x),
            |k, _| vec![*k],
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn multi_output_reducer() {
        let inputs = vec![1u32, 1, 2];
        let mut out = map_reduce(
            &MrConfig::sequential(),
            &inputs,
            |&x, emit: &mut Emitter<u32, u32>| emit.emit(x, x),
            |k, vs| vs.iter().map(|v| (*k, *v)).collect(),
        );
        out.sort();
        assert_eq!(out, vec![(1, 1), (1, 1), (2, 2)]);
    }
}
