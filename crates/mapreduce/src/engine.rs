//! The map → shuffle → reduce execution engine.
//!
//! Three shuffle strategies share one reduce phase:
//!
//! * **Unchunked** (`chunk_records == 0`, the default): the whole map
//!   output is materialised in per-partition buffers before any grouping
//!   happens. Peak raw-record residency equals the full shuffle volume
//!   (`JobStats::map_output`).
//! * **Chunked** (`chunk_records > 0`): inputs are mapped in bounded
//!   *waves* sized so each wave emits roughly `chunk_records` records; as
//!   each wave's buffers fill they are immediately merged into
//!   per-partition reduce-side group accumulators and freed. Peak
//!   raw-record residency is the largest single wave
//!   ([`JobStats::peak_resident_records`]), not the whole shuffle.
//! * **External** (`spill_threshold_records > 0`): the chunked shuffle
//!   additionally bounds the *grouped* residency. An optional
//!   [`Combiner`] partially reduces group accumulators as waves merge,
//!   and when the grouped records resident across all partitions would
//!   cross the threshold, partitions spill to sorted run files (encoded
//!   with [`kf_types::KvCodec`], see the `spill` module) and reduce by a
//!   k-way merge of runs. [`JobStats::peak_grouped_records`] and
//!   [`JobStats::spilled_bytes`] report the envelope.
//!
//! All paths are deterministic and produce identical output: waves are
//! processed in input order and, within a wave, worker buffers are merged
//! in worker order (workers own contiguous input chunks), so a key's
//! values always reach the reducer ordered by input index — and spilled
//! runs replay in spill order, which preserves exactly that order. The
//! design is documented in the repository's `ARCHITECTURE.md`.

use crate::spill::{merge_reduce_runs, write_run, SpillDir};
use crate::stats::JobStats;
use kf_types::hash::hash_one;
use kf_types::{FxHashMap, KvCodec};
use std::hash::Hash;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrConfig {
    /// Number of worker threads for the map and reduce phases.
    pub workers: usize,
    /// Number of shuffle partitions. More partitions smooth out key skew at
    /// the cost of per-partition overhead; defaults to `4 × workers`.
    /// Clamped to at least 1 by the engine (a directly constructed
    /// `partitions: 0` must not panic the shuffle router).
    pub partitions: usize,
    /// Soft cap on raw (mapper-emitted, not yet grouped) shuffle records
    /// resident in memory at once. `0` disables chunking and materialises
    /// the whole map output before reduction. The cap is approximate: a
    /// wave may overshoot when the mapper fan-out spikes, and a single
    /// input's emissions are never split across waves.
    pub chunk_records: usize,
    /// Soft cap on *grouped* records resident across all partition
    /// accumulators at once — the external shuffle. `0` disables
    /// spilling (grouped values accumulate in memory until reduced, the
    /// historical behaviour); like the `partitions: 0` clamp, a directly
    /// constructed `0` is safe and simply means "never spill". When the
    /// threshold would be crossed by merging the next wave, every
    /// non-empty partition serializes its accumulator to a sorted run
    /// file and frees the memory; the partition later reduces by k-way
    /// merging its runs. Requires a chunked shuffle: when
    /// `chunk_records == 0`, the engine chunks at this threshold. The cap
    /// is respected exactly as long as a single wave fits it (i.e.
    /// `chunk_records <= spill_threshold_records`); a single oversized
    /// wave can overshoot, because waves never split.
    ///
    /// Output is byte-identical with spilling on or off; see
    /// [`JobStats::peak_grouped_records`] / [`JobStats::spilled_bytes`]
    /// for the observed envelope.
    pub spill_threshold_records: usize,
    /// Directory under which spill runs are written (in a job-scoped
    /// subdirectory that is removed when the job finishes, including on
    /// panic). `None` uses the OS temp dir; point it at a scratch disk
    /// when spilling heavily.
    ///
    /// `&'static str` keeps `MrConfig` (and the `FusionConfig` embedding
    /// it) `Copy`, which the workspace passes by value everywhere. For a
    /// path computed at runtime, leak it once per *distinct* scratch dir
    /// (`Box::leak(path.into_boxed_str())`) — a process configures a
    /// handful of scratch disks at most, so the leak is bounded; don't
    /// leak per job.
    pub spill_dir: Option<&'static str>,
}

impl Default for MrConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        MrConfig {
            workers,
            partitions: workers * 4,
            chunk_records: 0,
            spill_threshold_records: 0,
            spill_dir: None,
        }
    }
}

impl MrConfig {
    /// A single-threaded configuration; useful for debugging and for
    /// baseline measurements in the scaling benches.
    pub fn sequential() -> Self {
        MrConfig {
            workers: 1,
            partitions: 1,
            ..Default::default()
        }
    }

    /// Configuration with `workers` threads and the default partition ratio.
    pub fn with_workers(workers: usize) -> Self {
        MrConfig {
            workers: workers.max(1),
            partitions: workers.max(1) * 4,
            ..Default::default()
        }
    }

    /// Builder-style: bound raw shuffle residency to roughly
    /// `chunk_records` records (`0` disables chunking).
    pub fn with_chunk_records(mut self, chunk_records: usize) -> Self {
        self.chunk_records = chunk_records;
        self
    }

    /// Builder-style: bound grouped residency to roughly `records`,
    /// spilling partition accumulators to disk beyond it (`0` disables
    /// spilling).
    ///
    /// ```
    /// use kf_mapreduce::MrConfig;
    ///
    /// // ~64K raw records per wave, spill grouped state past ~256K.
    /// let cfg = MrConfig::with_workers(4)
    ///     .with_chunk_records(1 << 16)
    ///     .with_spill_threshold(1 << 18);
    /// assert_eq!(cfg.spill_threshold_records, 1 << 18);
    /// ```
    pub fn with_spill_threshold(mut self, records: usize) -> Self {
        self.spill_threshold_records = records;
        self
    }

    /// Builder-style: write spill runs under `dir` instead of the OS temp
    /// dir (e.g. a dedicated scratch disk).
    pub fn with_spill_dir(mut self, dir: &'static str) -> Self {
        self.spill_dir = Some(dir);
        self
    }
}

/// Partial reduction applied to group accumulators while the shuffle is
/// still running — the classic MapReduce combiner, adapted to this
/// engine's reduce-side accumulation: it rewrites a group's value buffer
/// in place (typically folding many records into few) as chunked waves
/// merge and immediately before a partition spills to disk.
///
/// # Contract
///
/// The reducer must produce **identical output** from a combined buffer
/// and from the raw one — combining must be a reducer-invariant rewrite.
/// That holds for associative, order-insensitive folds over the values
/// (integer counts and sums, min/max, sort-and-deduplicate) but *not* for
/// order-sensitive reductions (floating-point accumulation, reservoir
/// sampling): for those, don't combine. The engine only runs combiners on
/// the chunked/external path, so the in-memory baseline
/// (`chunk_records == 0`, no spill) always shows the reference output to
/// compare against; the crate's proptests pin the equality.
///
/// Closures implement the trait directly:
///
/// ```
/// use kf_mapreduce::{map_reduce_combined, Emitter, MrConfig};
///
/// let docs = ["a b a", "b a", "a"];
/// let counts: Vec<(String, u64)> = map_reduce_combined(
///     &MrConfig::sequential().with_chunk_records(2),
///     &docs,
///     |doc: &&str, emit: &mut Emitter<String, u64>| {
///         for word in doc.split_whitespace() {
///             emit.emit(word.to_string(), 1);
///         }
///     },
///     // Combiner: fold partial counts into one.
///     |counts: &mut Vec<u64>| {
///         let sum: u64 = counts.drain(..).sum();
///         counts.push(sum);
///     },
///     // Reducer: total the (possibly pre-combined) counts.
///     |word, counts| vec![(word.clone(), counts.iter().sum::<u64>())],
/// );
/// assert!(counts.contains(&("a".to_string(), 4)));
/// ```
pub trait Combiner<V>: Sync {
    /// Rewrite `values` in place to a smaller reducer-equivalent buffer.
    fn combine(&self, values: &mut Vec<V>);
}

impl<V, F> Combiner<V> for F
where
    F: Fn(&mut Vec<V>) + Sync,
{
    #[inline]
    fn combine(&self, values: &mut Vec<V>) {
        self(values)
    }
}

/// A group's value buffer is combined when it reaches this many records
/// (and again at each doubling, so combine work stays amortized-linear
/// even for incompressible buffers).
const COMBINE_TRIGGER: usize = 64;

/// Collects `(key, value)` records emitted by a mapper and routes them to
/// shuffle partitions by key hash.
pub struct Emitter<K, V> {
    buffers: Vec<Vec<(K, V)>>,
    emitted: u64,
}

impl<K: Hash, V> Emitter<K, V> {
    fn new(partitions: usize) -> Self {
        // Clamp defensively: routing needs at least one bucket even if a
        // caller hands the engine `partitions: 0`.
        Emitter {
            buffers: (0..partitions.max(1)).map(|_| Vec::new()).collect(),
            emitted: 0,
        }
    }

    /// Emit one record.
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        let p = (hash_one(&key) as usize) % self.buffers.len();
        self.buffers[p].push((key, value));
        self.emitted += 1;
    }
}

/// Reduce-side accumulator: one group of values per distinct key.
type Groups<K, V> = FxHashMap<K, Vec<V>>;

/// What the shuffle hands to a reduce worker for one partition.
enum Partition<K, V> {
    /// Unchunked: raw records, grouped inside the reduce worker.
    Raw(Vec<(K, V)>),
    /// Chunked: records already merged into groups wave by wave.
    Grouped(Groups<K, V>),
    /// External: the partition spilled; reduce by k-way merging its
    /// sorted run files (in spill order).
    Spilled(Vec<PathBuf>),
}

/// Run a MapReduce job.
///
/// * `inputs` — the input records; read-only, shared across map workers.
/// * `mapper` — called once per input with an [`Emitter`]; may emit any
///   number of `(key, value)` records.
/// * `reducer` — called once per distinct key with all its values (in a
///   deterministic order: values are ordered by input index); returns the
///   output records for that key.
///
/// Output records are returned grouped by partition and sorted by key within
/// each partition, so the overall output is deterministic — and identical
/// whether the shuffle is unchunked, chunked ([`MrConfig::chunk_records`]),
/// or spilled to disk ([`MrConfig::spill_threshold_records`]).
pub fn map_reduce<I, K, V, O, M, R>(cfg: &MrConfig, inputs: &[I], mapper: M, reducer: R) -> Vec<O>
where
    I: Sync,
    K: Hash + Eq + Ord + Send + KvCodec,
    V: Send + KvCodec,
    O: Send,
    M: Fn(&I, &mut Emitter<K, V>) + Sync,
    R: Fn(&K, Vec<V>) -> Vec<O> + Sync,
{
    run_job(cfg, inputs, mapper, None, reducer).0
}

/// [`map_reduce`] variant that also returns execution counters.
pub fn map_reduce_with_stats<I, K, V, O, M, R>(
    cfg: &MrConfig,
    inputs: &[I],
    mapper: M,
    reducer: R,
) -> (Vec<O>, JobStats)
where
    I: Sync,
    K: Hash + Eq + Ord + Send + KvCodec,
    V: Send + KvCodec,
    O: Send,
    M: Fn(&I, &mut Emitter<K, V>) + Sync,
    R: Fn(&K, Vec<V>) -> Vec<O> + Sync,
{
    run_job(cfg, inputs, mapper, None, reducer)
}

/// [`map_reduce`] with a [`Combiner`] partially reducing group
/// accumulators on the chunked/external shuffle path. With
/// `chunk_records == 0` and spilling disabled the combiner never runs
/// (there are no waves to combine between) and the job behaves exactly
/// like [`map_reduce`].
pub fn map_reduce_combined<I, K, V, O, M, C, R>(
    cfg: &MrConfig,
    inputs: &[I],
    mapper: M,
    combiner: C,
    reducer: R,
) -> Vec<O>
where
    I: Sync,
    K: Hash + Eq + Ord + Send + KvCodec,
    V: Send + KvCodec,
    O: Send,
    M: Fn(&I, &mut Emitter<K, V>) + Sync,
    C: Combiner<V>,
    R: Fn(&K, Vec<V>) -> Vec<O> + Sync,
{
    run_job(cfg, inputs, mapper, Some(&combiner), reducer).0
}

/// [`map_reduce_combined`] variant that also returns execution counters.
pub fn map_reduce_combined_with_stats<I, K, V, O, M, C, R>(
    cfg: &MrConfig,
    inputs: &[I],
    mapper: M,
    combiner: C,
    reducer: R,
) -> (Vec<O>, JobStats)
where
    I: Sync,
    K: Hash + Eq + Ord + Send + KvCodec,
    V: Send + KvCodec,
    O: Send,
    M: Fn(&I, &mut Emitter<K, V>) + Sync,
    C: Combiner<V>,
    R: Fn(&K, Vec<V>) -> Vec<O> + Sync,
{
    run_job(cfg, inputs, mapper, Some(&combiner), reducer)
}

/// What the shuffle phase hands to the reduce phase.
struct ShuffleOutcome<K, V> {
    partitions: Vec<Partition<K, V>>,
    map_output: u64,
    /// Peak raw (mapper-emitted, ungrouped) records resident at once.
    peak_raw: u64,
    /// Peak grouped records resident across all accumulators at once.
    peak_grouped: u64,
    spilled_bytes: u64,
    /// Run files written (mid-wave spills plus tail flushes).
    spill_runs: u64,
    /// Combiner invocations across merge, spill and flush.
    combiner_invocations: u64,
    /// Map waves executed (`0` for the unchunked shuffle).
    waves: u64,
    /// Keeps the spill directory (and its run files) alive until the
    /// reduce phase has merged them; dropping it removes everything.
    spill_dir: Option<SpillDir>,
}

/// The engine behind every public entry point.
fn run_job<I, K, V, O, M, R>(
    cfg: &MrConfig,
    inputs: &[I],
    mapper: M,
    combiner: Option<&dyn Combiner<V>>,
    reducer: R,
) -> (Vec<O>, JobStats)
where
    I: Sync,
    K: Hash + Eq + Ord + Send + KvCodec,
    V: Send + KvCodec,
    O: Send,
    M: Fn(&I, &mut Emitter<K, V>) + Sync,
    R: Fn(&K, Vec<V>) -> Vec<O> + Sync,
{
    let workers = cfg.workers.max(1);
    let partitions = cfg.partitions.max(1);
    let mut stats = JobStats::new(inputs.len() as u64);

    // ---- Map + shuffle ---------------------------------------------------
    // Spilling needs wave-merged accumulators to snapshot, so it implies a
    // chunked shuffle; without an explicit quota, chunk at the spill
    // threshold itself.
    let quota = if cfg.chunk_records > 0 {
        cfg.chunk_records
    } else {
        cfg.spill_threshold_records
    };
    let outcome = {
        let _shuffle = kf_telemetry::span("shuffle");
        if quota == 0 {
            let (records, map_output) = {
                let _map = kf_telemetry::span("map");
                shuffle_unchunked(inputs, workers, partitions, &mapper)
            };
            ShuffleOutcome {
                partitions: records.into_iter().map(Partition::Raw).collect(),
                map_output,
                // The whole raw shuffle is resident at once, and the reduce
                // phase groups it wholesale.
                peak_raw: map_output,
                peak_grouped: map_output,
                spilled_bytes: 0,
                spill_runs: 0,
                combiner_invocations: 0,
                waves: 0,
                spill_dir: None,
            }
        } else {
            shuffle_external(
                inputs,
                workers,
                partitions,
                quota,
                cfg.spill_threshold_records,
                cfg.spill_dir,
                combiner,
                &mapper,
            )
        }
    };
    stats.map_output = outcome.map_output;
    stats.peak_resident_records = outcome.peak_raw;
    stats.peak_grouped_records = outcome.peak_grouped;
    stats.spilled_bytes = outcome.spilled_bytes;
    stats.spill_runs = outcome.spill_runs;
    stats.combiner_invocations = outcome.combiner_invocations;
    let waves = outcome.waves;
    // Bind the guard so run files survive until reduction finishes; the
    // drop at the end of this function (or during a panic unwind) removes
    // the spill directory.
    let _spill_dir = outcome.spill_dir;

    // ---- Reduce phase ----------------------------------------------------
    // Workers steal whole partitions off a shared index. Keys are reduced in
    // sorted order within a partition for deterministic output; partition
    // results are re-assembled in partition order at the end.
    let next_partition = std::sync::atomic::AtomicUsize::new(0);
    // Partition data sits in Mutex<Option<..>> slots so exactly one worker
    // takes each partition; contention is one lock acquisition per
    // partition, not per record.
    type PartitionSlot<K, V> = std::sync::Mutex<Option<Partition<K, V>>>;
    let partition_slots: Vec<PartitionSlot<K, V>> = outcome
        .partitions
        .into_iter()
        .map(|p| std::sync::Mutex::new(Some(p)))
        .collect();

    let _reduce = kf_telemetry::span("reduce");
    let mut results: Vec<(usize, Vec<O>, u64)> = Vec::with_capacity(partitions);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next_partition;
                let reducer = &reducer;
                let slots = &partition_slots;
                scope.spawn(move || {
                    let mut local: Vec<(usize, Vec<O>, u64)> = Vec::new();
                    loop {
                        let p = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if p >= slots.len() {
                            break;
                        }
                        let payload = slots[p]
                            .lock()
                            .expect("partition lock poisoned")
                            .take()
                            .expect("partition taken twice");
                        let groups = match payload {
                            Partition::Spilled(runs) => {
                                // Runs are key-sorted; the streaming merge
                                // reduces directly.
                                let (out, n_keys) = merge_reduce_runs(&runs, reducer);
                                local.push((p, out, n_keys));
                                continue;
                            }
                            Partition::Grouped(groups) => groups,
                            Partition::Raw(records) => {
                                let mut groups: Groups<K, V> = FxHashMap::default();
                                merge_buffers(&mut groups, vec![records], None);
                                groups
                            }
                        };
                        let mut keyed: Vec<(K, Vec<V>)> = groups.into_iter().collect();
                        keyed.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                        let n_keys = keyed.len() as u64;
                        let mut out = Vec::new();
                        for (k, vs) in keyed {
                            out.extend(reducer(&k, vs));
                        }
                        local.push((p, out, n_keys));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            results.extend(h.join().expect("reduce worker panicked"));
        }
    });
    results.sort_unstable_by_key(|r| r.0);

    let mut output = Vec::new();
    for (_, out, n_keys) in results {
        stats.reduce_keys += n_keys;
        stats.reduce_output += out.len() as u64;
        output.extend(out);
    }
    drop(_reduce);

    // Fold the finished job into the installed trace (no-op when none):
    // volume counters add across jobs, residency peaks take the max —
    // the same rules `JobStats::merge` applies.
    if let Some(t) = kf_telemetry::current() {
        t.add("mr.jobs", 1);
        t.add("mr.map_input", stats.map_input);
        t.add("mr.map_output", stats.map_output);
        t.add("mr.reduce_keys", stats.reduce_keys);
        t.add("mr.reduce_output", stats.reduce_output);
        t.add("mr.waves", waves);
        t.add("mr.spill_runs", stats.spill_runs);
        t.add("mr.spilled_bytes", stats.spilled_bytes);
        t.add("mr.combiner_invocations", stats.combiner_invocations);
        t.record_max("mr.peak_resident_records", stats.peak_resident_records);
        t.record_max("mr.peak_grouped_records", stats.peak_grouped_records);
    }
    (output, stats)
}

/// Map `inputs` across up to `workers` threads (contiguous chunks, so
/// per-key value order follows input order) and return the emitters in
/// worker (= input) order.
fn map_slice<I, K, V, M>(
    inputs: &[I],
    workers: usize,
    partitions: usize,
    mapper: &M,
) -> Vec<Emitter<K, V>>
where
    I: Sync,
    K: Hash + Send,
    V: Send,
    M: Fn(&I, &mut Emitter<K, V>) + Sync,
{
    if inputs.is_empty() {
        return Vec::new();
    }
    let chunk_size = inputs.len().div_ceil(workers).max(1);
    if workers == 1 || inputs.len() <= chunk_size {
        // Single chunk: run inline, no thread spawn.
        let mut emitter = Emitter::new(partitions);
        for input in inputs {
            mapper(input, &mut emitter);
        }
        return vec![emitter];
    }
    let mut out = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut emitter = Emitter::new(partitions);
                    for input in chunk {
                        mapper(input, &mut emitter);
                    }
                    emitter
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("map worker panicked"));
        }
    });
    out
}

/// One-shot shuffle: map everything, then concatenate each partition's
/// buffers in worker order. Returns `(per-partition raw records, map_output)`.
fn shuffle_unchunked<I, K, V, M>(
    inputs: &[I],
    workers: usize,
    partitions: usize,
    mapper: &M,
) -> (Vec<Vec<(K, V)>>, u64)
where
    I: Sync,
    K: Hash + Send,
    V: Send,
    M: Fn(&I, &mut Emitter<K, V>) + Sync,
{
    let emitters = map_slice(inputs, workers, partitions, mapper);
    let map_output = emitters.iter().map(|e| e.emitted).sum();
    let mut partition_records: Vec<Vec<(K, V)>> = (0..partitions).map(|_| Vec::new()).collect();
    for emitter in emitters {
        for (p, buf) in emitter.buffers.into_iter().enumerate() {
            partition_records[p].extend(buf);
        }
    }
    (partition_records, map_output)
}

/// One batch handed to the spill-writer thread: taken partition
/// accumulators with the run paths they must be written to.
type SpillBatch<K, V> = Vec<(Groups<K, V>, PathBuf)>;

/// Wave-based shuffle with optional combining and spilling: map bounded
/// input waves, merging each wave's buffers into per-partition group
/// accumulators as they fill (so at most roughly `quota` raw records are
/// resident at once), combining group buffers as they grow, and spilling
/// all accumulators to sorted run files whenever merging the next wave
/// would push grouped residency past `spill_threshold` (`0` = never).
/// Wave sizes adapt to the observed mapper fan-out.
///
/// Run-file encode+write runs on a dedicated **spill-writer thread**,
/// double-buffered against the next wave's map work: the coordinating
/// thread snapshots the accumulators, records the (deterministic) run
/// paths, hands the batch over a rendezvous channel and immediately goes
/// back to mapping, so disk I/O overlaps CPU work instead of stalling the
/// wave loop. At most one batch is in flight (plus at most one waiting at
/// the rendezvous), so transient memory stays bounded by ~2× the spill
/// threshold; spill *points*, run contents and all `JobStats` counters
/// are byte-identical to the synchronous path — the writer thread only
/// changes *when* the bytes hit disk, never which bytes.
#[allow(clippy::too_many_arguments)]
fn shuffle_external<I, K, V, M>(
    inputs: &[I],
    workers: usize,
    partitions: usize,
    quota: usize,
    spill_threshold: usize,
    spill_base: Option<&'static str>,
    combiner: Option<&dyn Combiner<V>>,
    mapper: &M,
) -> ShuffleOutcome<K, V>
where
    I: Sync,
    K: Hash + Eq + Ord + Send + KvCodec,
    V: Send + KvCodec,
    M: Fn(&I, &mut Emitter<K, V>) + Sync,
{
    let quota = quota.max(1);
    let mut groups: Vec<Groups<K, V>> = (0..partitions).map(|_| FxHashMap::default()).collect();
    let mut runs: Vec<Vec<PathBuf>> = (0..partitions).map(|_| Vec::new()).collect();
    // Created lazily on the first spill, so jobs that stay under the
    // threshold never touch the filesystem.
    let mut spill_dir: Option<SpillDir> = None;
    let mut spilled_bytes = 0u64;
    let mut spill_runs = 0u64;
    let mut combiner_invocations = 0u64;
    let mut waves = 0u64;
    let mut resident = 0u64; // grouped records currently accumulated
    let mut peak_grouped = 0u64;
    let mut emitted_total = 0u64;
    let mut peak_raw = 0u64;
    std::thread::scope(|scope| {
        type Writer<'s, K, V> = (
            std::sync::mpsc::SyncSender<SpillBatch<K, V>>,
            std::thread::ScopedJoinHandle<'s, (u64, u64)>,
        );
        // Spawned lazily on the first spill; jobs that never spill never
        // pay for the thread.
        let mut writer: Option<Writer<'_, K, V>> = None;
        let mut consumed = 0usize;
        let mut last_wave = (0usize, 0u64);
        while consumed < inputs.len() {
            // Two rules size each wave:
            //
            // 1. The PREVIOUS wave's observed fan-out divides the quota — a
            //    local estimate tracks skewed inputs (e.g. items sorted so
            //    that high-fan-out regions cluster) far better than a global
            //    running average. It is floored at 1, so a wave never takes
            //    more than `quota` inputs and a low-emission prefix cannot
            //    grow a catch-up wave whose emissions dwarf the quota once
            //    the mapper starts emitting again. (Sub-quota waves from
            //    fan-out < 1 are cheap: small waves merge inline, and the
            //    map scan cost is the same however it is sliced.)
            // 2. A wave takes at most 2× the previous wave's inputs,
            //    starting from 1 — a geometric ramp, so even when the input
            //    *starts* in its hottest region (Zipf-head items first) the
            //    cold estimate can only overshoot the quota by ~2×, at the
            //    cost of ~log2(quota) tiny ramp-up waves.
            let wave_len = if consumed == 0 {
                1
            } else {
                let fanout = (last_wave.1 as f64 / last_wave.0 as f64).max(1.0);
                (((quota as f64) / fanout).ceil() as usize).min(last_wave.0.saturating_mul(2))
            }
            .clamp(1, inputs.len() - consumed);
            let _wave_span = kf_telemetry::span("wave");
            waves += 1;
            let wave = &inputs[consumed..consumed + wave_len];
            let emitters = {
                let _map = kf_telemetry::span("map");
                let map_start = Instant::now();
                let emitters = map_slice(wave, workers, partitions, mapper);
                kf_telemetry::record_time("mr.wave.map_ns", map_start.elapsed().as_nanos() as u64);
                emitters
            };
            let wave_emitted: u64 = emitters.iter().map(|e| e.emitted).sum();
            kf_telemetry::record_value("mr.wave.records", wave_emitted);
            peak_raw = peak_raw.max(wave_emitted);
            emitted_total += wave_emitted;
            consumed += wave_len;
            last_wave = (wave_len, wave_emitted);
            // Spill BEFORE the merge that would cross the threshold, so the
            // grouped residency never exceeds it (as long as a single wave
            // fits under the threshold — waves never split).
            if spill_threshold > 0
                && resident > 0
                && resident + wave_emitted > spill_threshold as u64
            {
                let _spill = kf_telemetry::span("spill");
                let spill_start = Instant::now();
                let dir = spill_dir.get_or_insert_with(|| SpillDir::create(spill_base));
                // Snapshot non-empty accumulators and assign their run
                // paths now — path order is what the k-way merge replays,
                // so it must be fixed on the coordinating thread.
                let mut batch: SpillBatch<K, V> = Vec::new();
                for (p, group) in groups.iter_mut().enumerate() {
                    if group.is_empty() {
                        continue;
                    }
                    let path = dir.run_path(p, runs[p].len());
                    runs[p].push(path.clone());
                    batch.push((std::mem::take(group), path));
                }
                spill_runs += batch.len() as u64;
                let (tx, _) = writer.get_or_insert_with(|| {
                    let (tx, rx) = std::sync::mpsc::sync_channel::<SpillBatch<K, V>>(0);
                    let handle = scope.spawn(move || {
                        let (mut bytes, mut combines) = (0u64, 0u64);
                        while let Ok(batch) = rx.recv() {
                            for (group, path) in batch {
                                let (b, c) = spill_one(group, &path, combiner);
                                bytes += b;
                                combines += c;
                            }
                        }
                        (bytes, combines)
                    });
                    (tx, handle)
                });
                // The rendezvous send blocks while the writer is still on
                // the previous batch — that block is the spill-writer
                // queue stall.
                let _stall = kf_telemetry::span("stall");
                if tx.send(batch).is_err() {
                    // The writer died mid-job (an I/O panic): join it so
                    // the original panic propagates instead of a send
                    // error.
                    let (_, handle) = writer.take().expect("writer just inserted");
                    match handle.join() {
                        Err(panic) => std::panic::resume_unwind(panic),
                        Ok(_) => unreachable!("writer exited while the sender was alive"),
                    }
                }
                // Coordinator-side spill cost: accumulator snapshot plus
                // the rendezvous stall. The writer thread's own I/O time
                // has no installed trace and is deliberately not recorded.
                kf_telemetry::record_time(
                    "mr.wave.spill_ns",
                    spill_start.elapsed().as_nanos() as u64,
                );
                resident = 0;
            }
            let delta = {
                let _merge = kf_telemetry::span("merge");
                let merge_start = Instant::now();
                let (delta, combines) = merge_wave(emitters, &mut groups, workers, combiner);
                kf_telemetry::record_time(
                    "mr.wave.merge_ns",
                    merge_start.elapsed().as_nanos() as u64,
                );
                combiner_invocations += combines;
                delta
            };
            resident = resident.saturating_add_signed(delta);
            peak_grouped = peak_grouped.max(resident);
        }
        // Drain the writer before reading any run file back.
        if let Some((tx, handle)) = writer.take() {
            drop(tx);
            match handle.join() {
                Ok((bytes, combines)) => {
                    spilled_bytes += bytes;
                    combiner_invocations += combines;
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });

    // A partition that ever spilled flushes its in-memory tail as one
    // final run (the latest input, so it merges last); partitions that
    // never spilled reduce from memory. The writer thread has already
    // been joined, so these writes cannot race an in-flight batch.
    let _flush = kf_telemetry::span("flush");
    let partitions_out: Vec<Partition<K, V>> = groups
        .into_iter()
        .zip(runs)
        .enumerate()
        .map(|(p, (group, mut run_files))| {
            if run_files.is_empty() {
                Partition::Grouped(group)
            } else {
                if !group.is_empty() {
                    let dir = spill_dir.as_ref().expect("runs exist without a spill dir");
                    let path = dir.run_path(p, run_files.len());
                    let (bytes, combines) = spill_one(group, &path, combiner);
                    spilled_bytes += bytes;
                    combiner_invocations += combines;
                    spill_runs += 1;
                    run_files.push(path);
                }
                Partition::Spilled(run_files)
            }
        })
        .collect();
    drop(_flush);

    ShuffleOutcome {
        partitions: partitions_out,
        map_output: emitted_total,
        peak_raw,
        peak_grouped,
        spilled_bytes,
        spill_runs,
        combiner_invocations,
        waves,
        spill_dir,
    }
}

/// Sort, (re-)combine and write one partition accumulator as the run file
/// at `path`. Runs on the spill-writer thread for mid-job spills and on
/// the coordinating thread for the final tail flush. Returns the bytes
/// written and the combiner invocations made.
fn spill_one<K, V>(
    group: Groups<K, V>,
    path: &Path,
    combiner: Option<&dyn Combiner<V>>,
) -> (u64, u64)
where
    K: Hash + Eq + Ord + KvCodec,
    V: KvCodec,
{
    let mut sorted: Vec<(K, Vec<V>)> = group.into_iter().collect();
    sorted.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut combines = 0u64;
    if let Some(c) = combiner {
        // One last squeeze before paying for the bytes.
        for (_, values) in &mut sorted {
            c.combine(values);
            combines += 1;
        }
    }
    (write_run(path, &sorted), combines)
}

/// Drain one wave's emitter buffers into the per-partition group
/// accumulators. Buffers are appended in worker order, preserving per-key
/// input order; partitions are merged in parallel (each partition is owned
/// by exactly one merge task, so no locks). Returns the net change in
/// grouped records resident (additions minus records folded away by the
/// combiner) and the number of combiner invocations.
fn merge_wave<K, V>(
    emitters: Vec<Emitter<K, V>>,
    groups: &mut [Groups<K, V>],
    workers: usize,
    combiner: Option<&dyn Combiner<V>>,
) -> (i64, u64)
where
    K: Hash + Eq + Send,
    V: Send,
{
    // Below this many records a wave is merged inline: spawning merge
    // threads per tiny wave (small `chunk_records`) would cost more than
    // the moves themselves.
    const PARALLEL_MERGE_THRESHOLD: u64 = 4_096;
    let wave_records: u64 = emitters.iter().map(|e| e.emitted).sum();
    let partitions = groups.len();
    let mut per_partition: Vec<Vec<Vec<(K, V)>>> = (0..partitions).map(|_| Vec::new()).collect();
    for emitter in emitters {
        for (p, buf) in emitter.buffers.into_iter().enumerate() {
            if !buf.is_empty() {
                per_partition[p].push(buf);
            }
        }
    }
    if workers == 1 || partitions == 1 || wave_records < PARALLEL_MERGE_THRESHOLD {
        let (mut delta, mut combines) = (0i64, 0u64);
        for (group, bufs) in groups.iter_mut().zip(per_partition) {
            let (d, c) = merge_buffers(group, bufs, combiner);
            delta += d;
            combines += c;
        }
        return (delta, combines);
    }
    type MergeTask<'a, K, V> = (&'a mut Groups<K, V>, Vec<Vec<(K, V)>>);
    let mut tasks: Vec<MergeTask<'_, K, V>> = groups.iter_mut().zip(per_partition).collect();
    let per_worker = tasks.len().div_ceil(workers).max(1);
    let (mut delta, mut combines) = (0i64, 0u64);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        while !tasks.is_empty() {
            let chunk: Vec<_> = tasks.drain(..per_worker.min(tasks.len())).collect();
            handles.push(scope.spawn(move || {
                let (mut local, mut local_combines) = (0i64, 0u64);
                for (group, bufs) in chunk {
                    let (d, c) = merge_buffers(group, bufs, combiner);
                    local += d;
                    local_combines += c;
                }
                (local, local_combines)
            }));
        }
        for h in handles {
            let (d, c) = h.join().expect("merge worker panicked");
            delta += d;
            combines += c;
        }
    });
    (delta, combines)
}

/// Append raw buffers into a group accumulator, combining any group whose
/// buffer reaches a power-of-two length ≥ [`COMBINE_TRIGGER`]. Returns
/// the net change in resident records and the combiner invocations made.
fn merge_buffers<K: Hash + Eq, V>(
    group: &mut Groups<K, V>,
    bufs: Vec<Vec<(K, V)>>,
    combiner: Option<&dyn Combiner<V>>,
) -> (i64, u64) {
    let mut delta = 0i64;
    let mut combines = 0u64;
    for buf in bufs {
        for (k, v) in buf {
            let values = group.entry(k).or_default();
            values.push(v);
            delta += 1;
            if let Some(c) = combiner {
                let len = values.len();
                if len >= COMBINE_TRIGGER && len.is_power_of_two() {
                    c.combine(values);
                    combines += 1;
                    delta += values.len() as i64 - len as i64;
                }
            }
        }
    }
    (delta, combines)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic word count over synthetic "documents".
    fn word_count(cfg: &MrConfig, docs: &[&str]) -> Vec<(String, usize)> {
        map_reduce(
            cfg,
            docs,
            |doc: &&str, emit: &mut Emitter<String, usize>| {
                for word in doc.split_whitespace() {
                    emit.emit(word.to_string(), 1);
                }
            },
            |word, counts| vec![(word.clone(), counts.len())],
        )
    }

    #[test]
    fn word_count_basic() {
        let docs = ["a b a", "b c", "a"];
        let mut out = word_count(&MrConfig::sequential(), &docs);
        out.sort();
        assert_eq!(
            out,
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 2),
                ("c".to_string(), 1)
            ]
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let docs: Vec<String> = (0..500)
            .map(|i| format!("w{} w{} shared", i % 7, i % 13))
            .collect();
        let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let mut seq = word_count(&MrConfig::sequential(), &doc_refs);
        let mut par = word_count(&MrConfig::with_workers(8), &doc_refs);
        seq.sort();
        par.sort();
        assert_eq!(seq, par);
    }

    #[test]
    fn output_is_deterministic_across_runs() {
        let inputs: Vec<u64> = (0..10_000).collect();
        let run = || {
            map_reduce(
                &MrConfig::with_workers(6),
                &inputs,
                |&x, emit: &mut Emitter<u64, u64>| emit.emit(x % 97, x),
                |k, vs| vec![(*k, vs.iter().sum::<u64>())],
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn values_arrive_in_input_order() {
        // Reducer sees values ordered by input index even with many workers.
        let inputs: Vec<u32> = (0..5_000).collect();
        let out = map_reduce(
            &MrConfig::with_workers(8),
            &inputs,
            |&x, emit: &mut Emitter<u32, u32>| emit.emit(x % 3, x),
            |_k, vs| {
                assert!(vs.windows(2).all(|w| w[0] < w[1]), "values out of order");
                vec![vs.len()]
            },
        );
        assert_eq!(out.iter().sum::<usize>(), 5_000);
    }

    #[test]
    fn values_arrive_in_input_order_chunked() {
        // The chunked shuffle must preserve the same per-key value order:
        // waves run in input order and worker buffers merge in input order.
        let inputs: Vec<u32> = (0..5_000).collect();
        let out = map_reduce(
            &MrConfig::with_workers(8).with_chunk_records(256),
            &inputs,
            |&x, emit: &mut Emitter<u32, u32>| emit.emit(x % 3, x),
            |_k, vs| {
                assert!(vs.windows(2).all(|w| w[0] < w[1]), "values out of order");
                vec![vs.len()]
            },
        );
        assert_eq!(out.iter().sum::<usize>(), 5_000);
    }

    #[test]
    fn values_arrive_in_input_order_spilled() {
        // Spilled runs replay in spill order, which is input order — the
        // reducer must observe exactly the same per-key value order.
        let inputs: Vec<u32> = (0..5_000).collect();
        let (out, stats) = map_reduce_with_stats(
            &MrConfig::with_workers(8)
                .with_chunk_records(256)
                .with_spill_threshold(512),
            &inputs,
            |&x, emit: &mut Emitter<u32, u32>| emit.emit(x % 3, x),
            |_k, vs| {
                assert!(vs.windows(2).all(|w| w[0] < w[1]), "values out of order");
                vec![vs.len()]
            },
        );
        assert_eq!(out.iter().sum::<usize>(), 5_000);
        assert!(stats.spilled_bytes > 0, "spill path was not exercised");
    }

    #[test]
    fn chunked_output_matches_unchunked_exactly() {
        let docs: Vec<String> = (0..800)
            .map(|i| format!("w{} w{} shared", i % 17, i % 29))
            .collect();
        let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let unchunked = word_count(&MrConfig::with_workers(4), &doc_refs);
        for chunk in [1usize, 7, 64, 1 << 20] {
            let chunked = word_count(
                &MrConfig::with_workers(4).with_chunk_records(chunk),
                &doc_refs,
            );
            // Not just set equality: the partition-then-key output order is
            // identical, so plain == must hold.
            assert_eq!(unchunked, chunked, "chunk_records = {chunk}");
        }
    }

    #[test]
    fn spilled_output_matches_in_memory_exactly() {
        let docs: Vec<String> = (0..800)
            .map(|i| format!("w{} w{} shared", i % 17, i % 29))
            .collect();
        let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let in_memory = word_count(&MrConfig::with_workers(4), &doc_refs);
        for (chunk, spill) in [(64usize, 128usize), (32, 32), (128, 1 << 20), (0, 200)] {
            let cfg = MrConfig::with_workers(4)
                .with_chunk_records(chunk)
                .with_spill_threshold(spill);
            let spilled = word_count(&cfg, &doc_refs);
            assert_eq!(in_memory, spilled, "chunk={chunk} spill={spill}");
        }
    }

    #[test]
    fn spill_bounds_grouped_residency() {
        let inputs: Vec<u64> = (0..50_000).collect();
        let job = |cfg: &MrConfig| {
            map_reduce_with_stats(
                cfg,
                &inputs,
                |&x, emit: &mut Emitter<u64, u64>| emit.emit(x % 513, x),
                |k, vs| vec![(*k, vs.iter().sum::<u64>())],
            )
        };
        let (base_out, base) = job(&MrConfig::with_workers(4));
        // In memory, every grouped record is resident at reduce time.
        assert_eq!(base.peak_grouped_records, base.map_output);
        assert_eq!(base.spilled_bytes, 0);

        let threshold = 8_192u64;
        let (out, stats) = job(&MrConfig::with_workers(4)
            .with_chunk_records(2_048)
            .with_spill_threshold(threshold as usize));
        assert_eq!(base_out, out, "spilled output must be byte-identical");
        assert!(stats.spilled_bytes > 0);
        // A wave (≤ ~2×2048) always fits under the 8192 threshold, so the
        // pre-merge spill keeps grouped residency at or under it.
        assert!(
            stats.peak_grouped_records <= threshold,
            "grouped peak {} above the {} threshold",
            stats.peak_grouped_records,
            threshold
        );
        assert!(stats.peak_grouped_records > 0);
    }

    #[test]
    fn combiner_folds_counts_without_changing_output() {
        let inputs: Vec<u64> = (0..20_000).collect();
        let mapper = |&x: &u64, emit: &mut Emitter<u64, u64>| emit.emit(x % 7, 1);
        let reducer = |k: &u64, vs: Vec<u64>| vec![(*k, vs.iter().sum::<u64>())];
        let (base_out, base) =
            map_reduce_with_stats(&MrConfig::with_workers(4), &inputs, mapper, reducer);

        let cfg = MrConfig::with_workers(4).with_chunk_records(1_024);
        let combine = |vs: &mut Vec<u64>| {
            let sum: u64 = vs.drain(..).sum();
            vs.push(sum);
        };
        let (out, stats) = map_reduce_combined_with_stats(&cfg, &inputs, mapper, combine, reducer);
        assert_eq!(base_out, out);
        // 7 hot keys × 20k records: combining must collapse the grouped
        // residency far below the uncombined total.
        assert!(
            stats.peak_grouped_records < base.peak_grouped_records / 10,
            "combined grouped peak {} vs uncombined {}",
            stats.peak_grouped_records,
            base.peak_grouped_records
        );
    }

    #[test]
    fn combiner_plus_spill_compose() {
        let inputs: Vec<u64> = (0..30_000).collect();
        // Many distinct keys (little to combine) plus hot keys (much to
        // combine) — both paths exercised together with spilling.
        let mapper = |&x: &u64, emit: &mut Emitter<u64, u64>| {
            let key = if x % 5 == 0 { 100_000 + x } else { x % 17 };
            emit.emit(key, 1);
        };
        let reducer = |k: &u64, vs: Vec<u64>| vec![(*k, vs.iter().sum::<u64>())];
        let baseline = map_reduce(&MrConfig::with_workers(4), &inputs, mapper, reducer);
        let cfg = MrConfig::with_workers(4)
            .with_chunk_records(512)
            .with_spill_threshold(2_048);
        let combine = |vs: &mut Vec<u64>| {
            let sum: u64 = vs.drain(..).sum();
            vs.push(sum);
        };
        let (out, stats) = map_reduce_combined_with_stats(&cfg, &inputs, mapper, combine, reducer);
        assert_eq!(baseline, out);
        assert!(stats.spilled_bytes > 0);
        assert!(stats.peak_grouped_records <= 2_048 + 1_024);
        assert!(stats.spill_runs > 0, "spilling must write run files");
        assert!(
            stats.combiner_invocations > 0,
            "hot keys must trip the combiner"
        );
    }

    #[test]
    fn async_spill_writer_keeps_stats_deterministic() {
        // The spill-writer thread overlaps I/O with mapping; spill points,
        // run contents and every JobStats counter must nevertheless be
        // identical run-to-run (the determinism ledger says wave sizing —
        // and therefore spilled_bytes and both peaks — depends only on
        // the input and the config, never on thread interleaving).
        let inputs: Vec<u64> = (0..30_000).collect();
        let job = || {
            map_reduce_with_stats(
                &MrConfig::with_workers(4)
                    .with_chunk_records(1_024)
                    .with_spill_threshold(4_096),
                &inputs,
                |&x, emit: &mut Emitter<u64, u64>| emit.emit(x % 257, x),
                |k, vs| vec![(*k, vs.iter().sum::<u64>())],
            )
        };
        let (out_a, stats_a) = job();
        let (out_b, stats_b) = job();
        assert_eq!(out_a, out_b);
        assert!(stats_a.spilled_bytes > 0);
        assert_eq!(stats_a.spilled_bytes, stats_b.spilled_bytes);
        assert_eq!(stats_a.peak_grouped_records, stats_b.peak_grouped_records);
        assert_eq!(stats_a.peak_resident_records, stats_b.peak_resident_records);
        assert!(stats_a.spill_runs > 0);
        // The whole counter block is deterministic, new fields included.
        assert_eq!(stats_a, stats_b);
    }

    #[test]
    fn installed_trace_mirrors_job_stats() {
        let inputs: Vec<u64> = (0..10_000).collect();
        let cfg = MrConfig::with_workers(2)
            .with_chunk_records(512)
            .with_spill_threshold(2_048);
        let trace = kf_telemetry::Trace::new();
        let (_, stats) = {
            let _t = kf_telemetry::install(&trace);
            map_reduce_with_stats(
                &cfg,
                &inputs,
                |&x, emit: &mut Emitter<u64, u64>| emit.emit(x % 1_021, x),
                |k, vs| vec![(*k, vs.len() as u64)],
            )
        };
        let report = trace.snapshot();
        let counter = |name: &str| {
            report
                .counters
                .iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("missing counter {name}"))
                .value
        };
        assert_eq!(counter("mr.jobs"), 1);
        assert_eq!(counter("mr.map_input"), stats.map_input);
        assert_eq!(counter("mr.map_output"), stats.map_output);
        assert_eq!(counter("mr.reduce_keys"), stats.reduce_keys);
        assert_eq!(counter("mr.spilled_bytes"), stats.spilled_bytes);
        assert_eq!(counter("mr.spill_runs"), stats.spill_runs);
        assert_eq!(
            counter("mr.peak_grouped_records"),
            stats.peak_grouped_records
        );
        assert!(counter("mr.waves") > 0);
        // The span tree has the engine phases in the right places: waves
        // under the shuffle, map/spill/merge under the wave.
        let shuffle = report.root.child("shuffle").expect("shuffle span");
        let wave = shuffle.child("wave").expect("wave span");
        assert_eq!(wave.calls, counter("mr.waves"));
        assert!(wave.child("map").is_some());
        assert!(wave.child("spill").is_some());
        assert!(wave.child("merge").is_some());
        assert!(report.root.child("reduce").is_some());
        // Per-wave histograms: one records the emitted record count per
        // wave (a Value histogram, so its distribution is deterministic),
        // the duration ones record once per wave / once per spill.
        let hist = |name: &str| {
            report
                .histograms
                .iter()
                .find(|h| h.name == name)
                .unwrap_or_else(|| panic!("missing histogram {name}"))
        };
        let records = hist("mr.wave.records");
        assert_eq!(records.kind, kf_telemetry::HistKind::Value);
        assert_eq!(records.count, counter("mr.waves"));
        assert_eq!(
            records.sum, stats.map_output,
            "every mapped record is observed by exactly one wave"
        );
        assert_eq!(hist("mr.wave.map_ns").kind, kf_telemetry::HistKind::Time);
        assert_eq!(hist("mr.wave.map_ns").count, counter("mr.waves"));
        assert_eq!(hist("mr.wave.merge_ns").count, counter("mr.waves"));
        assert!(hist("mr.wave.spill_ns").count > 0, "this config spills");
    }

    #[test]
    fn spill_threshold_zero_is_disabled() {
        // Mirror of the `partitions: 0` clamp: a directly constructed
        // `spill_threshold_records: 0` must mean "never spill", not panic
        // or spill-every-wave.
        let cfg = MrConfig {
            spill_threshold_records: 0,
            ..MrConfig::with_workers(2).with_chunk_records(64)
        };
        let docs = ["a b a", "b c"];
        let inputs: Vec<&str> = docs.to_vec();
        let (out, stats) = map_reduce_with_stats(
            &cfg,
            &inputs,
            |doc: &&str, emit: &mut Emitter<String, usize>| {
                for word in doc.split_whitespace() {
                    emit.emit(word.to_string(), 1);
                }
            },
            |word, counts| vec![(word.clone(), counts.len())],
        );
        assert_eq!(stats.spilled_bytes, 0);
        let mut sorted = out;
        sorted.sort();
        assert_eq!(
            sorted,
            vec![
                ("a".to_string(), 2),
                ("b".to_string(), 2),
                ("c".to_string(), 1)
            ]
        );
    }

    #[test]
    fn pathologically_small_spill_threshold_still_correct() {
        // threshold 1 < any wave: spills before every merge; output must
        // still be byte-identical and nothing may panic.
        let inputs: Vec<u64> = (0..2_000).collect();
        let job = |cfg: &MrConfig| {
            map_reduce(
                cfg,
                &inputs,
                |&x, emit: &mut Emitter<u64, u64>| emit.emit(x % 31, x),
                |k, vs| vec![(*k, vs.iter().sum::<u64>())],
            )
        };
        let base = job(&MrConfig::with_workers(3));
        let spilled = job(&MrConfig::with_workers(3)
            .with_chunk_records(128)
            .with_spill_threshold(1));
        assert_eq!(base, spilled);
    }

    #[test]
    fn hundreds_of_runs_per_partition_stay_correct() {
        // A tiny threshold over many waves accumulates far more runs per
        // partition than MAX_MERGE_FANIN; the bounded-fan-in compaction
        // must keep the output byte-identical (and the FD count capped).
        let inputs: Vec<u64> = (0..3_000).collect();
        let job = |cfg: &MrConfig| {
            map_reduce_with_stats(
                cfg,
                &inputs,
                |&x, emit: &mut Emitter<u64, u64>| emit.emit(x % 11, x),
                |k, vs| vec![(*k, vs)],
            )
        };
        let (base, _) = job(&MrConfig::sequential());
        let cfg = MrConfig {
            workers: 1,
            partitions: 1,
            ..MrConfig::default()
        }
        .with_chunk_records(8)
        .with_spill_threshold(8);
        let (spilled, stats) = job(&cfg);
        assert_eq!(base, spilled);
        // ~375 spill events → well past the 64-run merge fan-in.
        assert!(stats.spilled_bytes > 0);
    }

    #[test]
    fn spill_without_chunking_chunks_at_the_threshold() {
        // chunk_records == 0 but a spill threshold set: the engine must
        // still take the wave-based path (spilling needs accumulators to
        // snapshot) and bound both residencies near the threshold.
        let inputs: Vec<u64> = (0..20_000).collect();
        let (out, stats) = map_reduce_with_stats(
            &MrConfig::with_workers(4).with_spill_threshold(1_000),
            &inputs,
            |&x, emit: &mut Emitter<u64, u64>| emit.emit(x % 97, x),
            |k, vs| vec![(*k, vs.iter().sum::<u64>())],
        );
        assert_eq!(out.len(), 97);
        assert!(stats.spilled_bytes > 0);
        assert!(stats.peak_resident_records <= 2_000);
        assert!(stats.peak_grouped_records <= 2_000);
    }

    #[test]
    fn spill_temp_files_are_removed_after_success_and_panic() {
        // Point spills at a private base dir so the assertion cannot race
        // other tests spilling into the OS temp dir.
        let base = std::env::temp_dir().join(format!("kf-mr-engine-test-{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let base_str: &'static str = Box::leak(base.to_str().unwrap().to_string().into_boxed_str());
        let cfg = MrConfig::with_workers(2)
            .with_chunk_records(64)
            .with_spill_threshold(128)
            .with_spill_dir(base_str);
        let inputs: Vec<u64> = (0..2_000).collect();

        // Success: job completes, runs are merged, directory cleaned.
        let (_, stats) = map_reduce_with_stats(
            &cfg,
            &inputs,
            |&x, emit: &mut Emitter<u64, u64>| emit.emit(x % 13, x),
            |k, vs| vec![(*k, vs.len())],
        );
        assert!(stats.spilled_bytes > 0, "spill path was not exercised");
        assert_eq!(
            std::fs::read_dir(&base).unwrap().count(),
            0,
            "spill dirs must be removed after a successful job"
        );

        // Reducer panic: the unwind must still remove every spill file.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            map_reduce(
                &cfg,
                &inputs,
                |&x, emit: &mut Emitter<u64, u64>| emit.emit(x % 13, x),
                |_k, _vs| -> Vec<u64> { panic!("reducer failure") },
            )
        }));
        assert!(result.is_err(), "reducer panic must propagate");
        assert_eq!(
            std::fs::read_dir(&base).unwrap().count(),
            0,
            "spill dirs must be removed when a reducer panics"
        );
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn partitions_zero_is_clamped() {
        // Regression: a directly constructed `partitions: 0` (or
        // `workers: 0`) must be clamped by the engine, not panic with a
        // modulo-by-zero in the shuffle router.
        for chunk_records in [0usize, 16] {
            let cfg = MrConfig {
                workers: 0,
                partitions: 0,
                chunk_records,
                ..MrConfig::default()
            };
            let docs = ["a b a", "b c"];
            let mut out = word_count(&cfg, &docs);
            out.sort();
            assert_eq!(
                out,
                vec![
                    ("a".to_string(), 2),
                    ("b".to_string(), 2),
                    ("c".to_string(), 1)
                ]
            );
        }
    }

    #[test]
    fn empty_input_gives_empty_output() {
        for cfg in [
            MrConfig::default(),
            MrConfig::default().with_chunk_records(64),
            MrConfig::default()
                .with_chunk_records(64)
                .with_spill_threshold(16),
        ] {
            let out: Vec<u32> = map_reduce(
                &cfg,
                &Vec::<u32>::new(),
                |&x, emit: &mut Emitter<u32, u32>| emit.emit(x, x),
                |_k, _vs| vec![0u32],
            );
            assert!(out.is_empty());
        }
    }

    #[test]
    fn skewed_keys_are_handled() {
        // 90% of records share one key — the paper's data-item skew
        // (up to 2.7M extractions for one item).
        let inputs: Vec<u32> = (0..20_000).collect();
        for cfg in [
            MrConfig::with_workers(4),
            MrConfig::with_workers(4).with_chunk_records(1_000),
            MrConfig::with_workers(4)
                .with_chunk_records(1_000)
                .with_spill_threshold(4_000),
        ] {
            let out = map_reduce(
                &cfg,
                &inputs,
                |&x, emit: &mut Emitter<u32, u32>| {
                    let key = if x % 10 == 0 { x % 100 } else { 0 };
                    emit.emit(key, x);
                },
                |k, vs| vec![(*k, vs.len())],
            );
            let total: usize = out.iter().map(|&(_, n)| n).sum();
            assert_eq!(total, 20_000);
            let hot = out.iter().find(|&&(k, _)| k == 0).unwrap().1;
            assert!(hot >= 18_000);
        }
    }

    #[test]
    fn stats_count_records() {
        let inputs: Vec<u32> = (0..100).collect();
        let (_, stats) = map_reduce_with_stats(
            &MrConfig::with_workers(3),
            &inputs,
            |&x, emit: &mut Emitter<u32, u32>| {
                emit.emit(x % 10, x);
                emit.emit(x % 5, x);
            },
            |_k, vs| vs,
        );
        assert_eq!(stats.map_input, 100);
        assert_eq!(stats.map_output, 200);
        assert_eq!(stats.reduce_keys, 10); // keys 0..10 (x%5 ⊂ x%10)
        assert_eq!(stats.reduce_output, 200);
        // Unchunked: the whole shuffle is resident at once, raw and grouped.
        assert_eq!(stats.peak_resident_records, 200);
        assert_eq!(stats.peak_grouped_records, 200);
        assert_eq!(stats.spilled_bytes, 0);
    }

    #[test]
    fn chunked_waves_adapt_to_fanout() {
        // Each input emits 10 records; the adaptive wave sizing must keep
        // the peak near the quota instead of 10× above it.
        let inputs: Vec<u32> = (0..5_000).collect();
        let (_, stats) = map_reduce_with_stats(
            &MrConfig::sequential().with_chunk_records(1_000),
            &inputs,
            |&x, emit: &mut Emitter<u32, u32>| {
                for j in 0..10 {
                    emit.emit((x + j) % 97, x);
                }
            },
            |k, vs| vec![(*k, vs.len())],
        );
        assert_eq!(stats.map_output, 50_000);
        // The geometric ramp keeps early waves tiny while the fan-out is
        // unknown; steady-state waves are sized from the observed fan-out
        // (~100 inputs → ~1000 records), so the peak stays near the quota
        // despite the 10× fan-out.
        assert!(
            stats.peak_resident_records <= 1_100,
            "peak {} did not adapt",
            stats.peak_resident_records
        );
    }

    #[test]
    fn low_emission_prefix_does_not_blow_the_quota() {
        // First half of the input emits nothing. The fan-out estimate is
        // floored at 1 (a wave never takes more than `quota` inputs), so
        // when emissions resume the peak stays at the quota instead of a
        // huge catch-up wave.
        let inputs: Vec<u32> = (0..40_000).collect();
        let (_, stats) = map_reduce_with_stats(
            &MrConfig::sequential().with_chunk_records(500),
            &inputs,
            |&x, emit: &mut Emitter<u32, u32>| {
                if x >= 20_000 {
                    emit.emit(x % 97, x);
                }
            },
            |k, vs| vec![(*k, vs.len())],
        );
        assert_eq!(stats.map_output, 20_000);
        assert!(
            stats.peak_resident_records <= 500,
            "peak {} above the 500-record quota",
            stats.peak_resident_records
        );
    }

    #[test]
    fn chunked_peak_is_bounded_below_unchunked() {
        let inputs: Vec<u64> = (0..50_000).collect();
        let job = |cfg: &MrConfig| {
            map_reduce_with_stats(
                cfg,
                &inputs,
                |&x, emit: &mut Emitter<u64, u64>| emit.emit(x % 513, x),
                |k, vs| vec![(*k, vs.iter().sum::<u64>())],
            )
            .1
        };
        let unchunked = job(&MrConfig::with_workers(4));
        assert_eq!(unchunked.peak_resident_records, unchunked.map_output);

        let chunked = job(&MrConfig::with_workers(4).with_chunk_records(2_048));
        assert_eq!(chunked.map_output, unchunked.map_output);
        assert!(
            chunked.peak_resident_records < unchunked.peak_resident_records,
            "peak {} not below unchunked {}",
            chunked.peak_resident_records,
            unchunked.peak_resident_records
        );
        // Fan-out here is exactly 1, so the bound is tight up to one wave.
        assert!(
            chunked.peak_resident_records <= 2 * 2_048,
            "peak {} far above the 2048-record quota",
            chunked.peak_resident_records
        );
    }

    #[test]
    fn more_workers_than_inputs() {
        let inputs = vec![1u32, 2];
        let out = map_reduce(
            &MrConfig::with_workers(16),
            &inputs,
            |&x, emit: &mut Emitter<u32, u32>| emit.emit(x, x),
            |k, _| vec![*k],
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn multi_output_reducer() {
        let inputs = vec![1u32, 1, 2];
        let mut out = map_reduce(
            &MrConfig::sequential(),
            &inputs,
            |&x, emit: &mut Emitter<u32, u32>| emit.emit(x, x),
            |k, vs| vs.iter().map(|v| (*k, *v)).collect(),
        );
        out.sort();
        assert_eq!(out, vec![(1, 1), (1, 1), (2, 2)]);
    }
}
