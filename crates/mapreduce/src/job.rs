//! Job descriptions: the static shape of a sharded run, factored out of
//! the execution engines that consume it.
//!
//! PRs 2–5 grew two consumers of the same round-robin split — the
//! `repro --shard i/n` process fan-out and now the `kf-dist`
//! coordinator's task table — and each had hand-rolled the arithmetic.
//! This module owns it: [`round_robin`] is the one definition of which
//! unit lands on which shard, and [`JobDescription`] names a whole
//! sharded job (every unit, the shard count) so a coordinator can
//! enumerate dispatchable shards and check completeness without knowing
//! what the units *are* (ablation presets today, corpus partitions
//! later).
//!
//! The split is deliberately round-robin rather than contiguous: unit
//! lists are ordered cheapest-first in practice (the ablation ladder
//! ascends in sophistication), so striping gives every shard a
//! near-equal mix of cheap and expensive units instead of handing the
//! last shard all the slow ones.

/// The units shard `index` of `of` is responsible for: round-robin over
/// `units` (index `j` goes to shard `j % of`). The union over all
/// shards is exactly `units`, each exactly once, preserving input
/// order within a shard.
///
/// # Panics
///
/// Panics when `of == 0` or `index >= of` — a malformed shard request
/// is a caller bug, not a recoverable condition.
pub fn round_robin<T: Clone>(units: &[T], index: usize, of: usize) -> Vec<T> {
    assert!(of >= 1 && index < of, "shard {index}/{of} out of range");
    units
        .iter()
        .enumerate()
        .filter(|(j, _)| j % of == index)
        .map(|(_, u)| u.clone())
        .collect()
}

/// The static description of a sharded job: every unit of work, in
/// canonical order, and how many shards split it. Pure data — no
/// execution state — so a coordinator can derive its whole task table
/// up front and an observer can audit completeness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobDescription {
    /// Every unit of the job, in canonical (merge) order. Unit names
    /// are opaque here; the consumer resolves them (preset names for an
    /// ablation job).
    pub units: Vec<String>,
    /// How many shards split the units. Shards with no units (when
    /// `shard_count > units.len()`) are legal and empty.
    pub shard_count: usize,
}

impl JobDescription {
    /// Describe a job splitting `units` across `shard_count` shards.
    ///
    /// # Panics
    ///
    /// Panics on `shard_count == 0` — a job with no shards cannot run.
    pub fn new(units: Vec<String>, shard_count: usize) -> JobDescription {
        assert!(shard_count >= 1, "a job needs at least one shard");
        JobDescription { units, shard_count }
    }

    /// The units shard `index` runs — [`round_robin`] over the job's
    /// units.
    pub fn shard_units(&self, index: usize) -> Vec<String> {
        round_robin(&self.units, index, self.shard_count)
    }

    /// Indexes of shards that carry at least one unit — what a
    /// coordinator actually dispatches (trailing shards are empty when
    /// there are more shards than units).
    pub fn populated_shards(&self) -> Vec<usize> {
        (0..self.shard_count)
            .filter(|&i| i < self.units.len())
            .collect()
    }

    /// Check that `done` (unit lists reported back per shard, any
    /// order) covers every unit exactly once — the coordinator's
    /// completeness audit before merging.
    pub fn is_complete(&self, done: &[Vec<String>]) -> bool {
        let mut seen: Vec<&String> = done.iter().flatten().collect();
        seen.sort();
        let mut want: Vec<&String> = self.units.iter().collect();
        want.sort();
        seen == want
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_partitions_exactly() {
        let units: Vec<u32> = (0..7).collect();
        for of in 1..=8 {
            let shards: Vec<Vec<u32>> = (0..of).map(|i| round_robin(&units, i, of)).collect();
            let mut union: Vec<u32> = shards.iter().flatten().copied().collect();
            union.sort_unstable();
            assert_eq!(union, units, "of={of}");
            for (i, s) in shards.iter().enumerate() {
                assert!(s.windows(2).all(|w| w[0] < w[1]), "shard {i} reordered");
                // Round-robin balance: sizes differ by at most one.
                assert!(s.len().abs_diff(units.len() / of) <= 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn round_robin_rejects_out_of_range_shard() {
        round_robin(&[1, 2, 3], 2, 2);
    }

    #[test]
    fn job_description_enumerates_and_audits() {
        let units: Vec<String> = ["vote", "accu", "popaccu"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let job = JobDescription::new(units.clone(), 5);
        assert_eq!(job.populated_shards(), vec![0, 1, 2]);
        assert_eq!(job.shard_units(0), vec!["vote".to_string()]);
        assert_eq!(job.shard_units(3), Vec::<String>::new());

        let done: Vec<Vec<String>> = (0..5).map(|i| job.shard_units(i)).collect();
        assert!(job.is_complete(&done));
        // Order of completion reports does not matter.
        let mut shuffled = done.clone();
        shuffled.reverse();
        assert!(job.is_complete(&shuffled));
        // A missing or duplicated unit fails the audit.
        assert!(!job.is_complete(&done[..2]));
        let mut dup = done;
        dup.push(vec!["vote".to_string()]);
        assert!(!job.is_complete(&dup));
    }
}
