//! # kf-mapreduce — a local MapReduce substrate
//!
//! The paper scales fusion to 6.4B extractions with a three-stage MapReduce
//! pipeline (Fig. 8): Stage I partitions extractions by **data item** and
//! computes triple probabilities; Stage II partitions by **provenance** and
//! re-evaluates provenance accuracy; the two iterate until convergence (or a
//! forced cut-off after `R` rounds), and Stage III partitions by **triple**
//! to deduplicate the output.
//!
//! This crate provides the same programming model on a single machine:
//!
//! * [`map_reduce`] — a generic map → shuffle → reduce execution over
//!   scoped worker threads with hash partitioning,
//! * [`MrConfig::chunk_records`] — the **chunked shuffle**: instead of
//!   materialising the whole map output before reduction, inputs are
//!   mapped in bounded waves whose buffers merge into reduce-side group
//!   accumulators as they fill, capping raw shuffle residency near the
//!   quota (reported as [`JobStats::peak_resident_records`]),
//! * [`MrConfig::spill_threshold_records`] — the **external shuffle**:
//!   when grouped residency would cross the threshold, partition
//!   accumulators spill to sorted run files (serialized with the
//!   hand-rolled [`kf_types::KvCodec`]) and reduce by k-way merge,
//!   capping grouped residency too ([`JobStats::peak_grouped_records`],
//!   [`JobStats::spilled_bytes`]),
//! * [`Combiner`] / [`map_reduce_combined`] — partial reduction of group
//!   accumulators while the shuffle runs (counts, sums, dedup), shrinking
//!   both the resident groups and the spilled bytes,
//! * [`Reservoir`] — the reducer-side uniform sampling the paper uses to cap
//!   per-key work at `L` records (§4.1 "we sample L triples each time"),
//! * [`IterativeDriver`] — round iteration with convergence detection and
//!   forced termination after `R` rounds (§4.1, Fig. 14),
//! * [`JobStats`] — counters for observability, the scaling benches, and
//!   the memory-envelope gates.
//!
//! The engine is deterministic: given the same inputs, configuration and
//! (pure) mapper/reducer functions, output order and content are reproducible
//! regardless of thread interleaving — and regardless of chunking, combining
//! or spilling — because records are grouped per partition, per-key values
//! arrive in input order (spilled runs replay in spill order, which *is*
//! input order), and keys are processed in sorted order. The external
//! shuffle design is documented in the repository's `ARCHITECTURE.md`.

pub mod driver;
pub mod engine;
pub mod job;
pub mod sampling;
mod spill;
pub mod stats;

pub use driver::{IterativeDriver, RoundOutcome};
pub use engine::{
    map_reduce, map_reduce_combined, map_reduce_combined_with_stats, map_reduce_with_stats,
    Combiner, Emitter, MrConfig,
};
pub use job::{round_robin, JobDescription};
pub use sampling::Reservoir;
pub use stats::JobStats;
